"""Integration tests: full device pipeline, calibration anchors."""

import numpy as np
import pytest

from repro.dsa.config import WqMode
from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.dsa.ops import execute
from repro.mem.address import AddressSpace
from repro.platform import spr_platform
from repro.sim import make_rng
from repro.workloads.microbench import (
    MicrobenchConfig,
    run_cbdma_microbench,
    run_dsa_microbench,
    run_software_microbench,
)

KB = 1024
MB = 1024 * KB


def platform_hop_bound():
    """One UPI hop (ns) on the default SPR topology."""
    from repro.mem.numa import UpiParams

    return UpiParams().hop_latency


def submit_and_run(platform, device, descriptor, wq_id=0):
    device.submit(descriptor, wq_id)
    platform.env.run()
    return descriptor.completion


class TestFunctionalThroughDevice:
    """Descriptors submitted to the device operate on real bytes."""

    def test_memmove_copies_data(self):
        platform = spr_platform()
        device = platform.driver.device("dsa0")
        space = AddressSpace()
        device.attach_space(space)
        src = space.allocate(4 * KB, backed=True)
        dst = space.allocate(4 * KB, backed=True)
        src.fill_random(make_rng(1))
        descriptor = WorkDescriptor(
            Opcode.MEMMOVE, pasid=space.pasid, src=src.va, dst=dst.va, size=4 * KB
        )
        record = submit_and_run(platform, device, descriptor)
        assert record.status == StatusCode.SUCCESS
        assert np.array_equal(dst.data, src.data)

    def test_crc_through_device_matches_direct(self):
        platform = spr_platform()
        device = platform.driver.device("dsa0")
        space = AddressSpace()
        device.attach_space(space)
        src = space.allocate(1 * KB, backed=True)
        src.fill_random(make_rng(2))
        descriptor = WorkDescriptor(
            Opcode.CRCGEN, pasid=space.pasid, src=src.va, size=1 * KB
        )
        record = submit_and_run(platform, device, descriptor)
        reference = WorkDescriptor(Opcode.CRCGEN, src=src.va, size=1 * KB)
        execute(reference, space)
        assert record.result == reference.completion.result

    def test_invalid_descriptor_completes_with_error(self):
        platform = spr_platform()
        device = platform.driver.device("dsa0")
        space = AddressSpace()
        device.attach_space(space)
        descriptor = WorkDescriptor(Opcode.MEMMOVE, pasid=space.pasid, size=0)
        record = submit_and_run(platform, device, descriptor)
        assert record.status == StatusCode.INVALID_SIZE

    def test_batch_completion_summarizes_members(self):
        platform = spr_platform()
        device = platform.driver.device("dsa0")
        space = AddressSpace()
        device.attach_space(space)
        members = []
        for _ in range(8):
            src = space.allocate(KB, backed=True)
            dst = space.allocate(KB, backed=True)
            src.fill_random(make_rng(3))
            members.append(
                WorkDescriptor(
                    Opcode.MEMMOVE, pasid=space.pasid, src=src.va, dst=dst.va, size=KB
                )
            )
        batch = BatchDescriptor(descriptors=members, pasid=space.pasid)
        record = submit_and_run(platform, device, batch)
        assert record.status == StatusCode.SUCCESS
        assert record.bytes_completed == 8  # descriptors completed
        assert all(m.completion.status == StatusCode.SUCCESS for m in members)

    def test_page_fault_without_block_on_fault(self):
        platform = spr_platform()
        device = platform.driver.device("dsa0")
        space = AddressSpace()
        device.attach_space(space)
        src = space.allocate(4 * KB, prefault=False)
        dst = space.allocate(4 * KB, prefault=True)
        descriptor = WorkDescriptor(
            Opcode.MEMMOVE,
            pasid=space.pasid,
            flags=DescriptorFlags.REQUEST_COMPLETION,  # no BLOCK_ON_FAULT
            src=src.va,
            dst=dst.va,
            size=4 * KB,
        )
        record = submit_and_run(platform, device, descriptor)
        assert record.status == StatusCode.PAGE_FAULT
        assert record.fault_address == src.va

    def test_page_fault_with_block_on_fault_stalls_but_succeeds(self):
        platform = spr_platform()
        device = platform.driver.device("dsa0")
        space = AddressSpace()
        device.attach_space(space)
        src = space.allocate(4 * KB, prefault=False)
        dst = space.allocate(4 * KB, prefault=True)
        descriptor = WorkDescriptor(
            Opcode.MEMMOVE, pasid=space.pasid, src=src.va, dst=dst.va, size=4 * KB
        )
        record = submit_and_run(platform, device, descriptor)
        assert record.status == StatusCode.SUCCESS
        elapsed = descriptor.times.completed - descriptor.times.submitted
        assert elapsed >= platform.memsys.iommu.params.page_fault_latency

    def test_unattached_pasid_crashes_loudly(self):
        platform = spr_platform()
        device = platform.driver.device("dsa0")
        space = AddressSpace()  # never attached
        descriptor = WorkDescriptor(Opcode.NOOP, pasid=space.pasid, size=0)
        device.submit(descriptor)
        with pytest.raises(KeyError, match="PASID"):
            platform.env.run()


class TestCalibrationAnchors:
    """The paper's published shapes (DESIGN.md §3) hold in the model."""

    def test_sync_crossover_near_4kb(self):
        """Fig 2a / Fig 6a: sync offload wins above ~4 KB, loses below."""
        small = MicrobenchConfig(transfer_size=1 * KB, queue_depth=1, iterations=30)
        large = MicrobenchConfig(transfer_size=16 * KB, queue_depth=1, iterations=30)
        assert (
            run_dsa_microbench(small).throughput
            < run_software_microbench(small).throughput
        )
        assert (
            run_dsa_microbench(large).throughput
            > run_software_microbench(large).throughput
        )

    def test_async_crossover_near_256b(self):
        """Fig 2b: async offload beats software around 256 B."""
        cfg256 = MicrobenchConfig(transfer_size=256, queue_depth=32, iterations=200)
        cfg64 = MicrobenchConfig(transfer_size=64, queue_depth=32, iterations=200)
        assert (
            run_dsa_microbench(cfg256).throughput
            > run_software_microbench(cfg256).throughput
        )
        assert (
            run_dsa_microbench(cfg64).throughput
            < run_software_microbench(cfg64).throughput
        )

    def test_fabric_saturation_at_30(self):
        cfg = MicrobenchConfig(transfer_size=256 * KB, queue_depth=32, iterations=100)
        throughput = run_dsa_microbench(cfg).throughput
        assert throughput == pytest.approx(30.0, rel=0.05)

    def test_batching_improves_small_transfer_throughput(self):
        """Fig 3: batches amortize submission for small sizes."""
        base = MicrobenchConfig(transfer_size=1 * KB, queue_depth=1, iterations=60)
        batched = MicrobenchConfig(
            transfer_size=1 * KB, batch_size=32, queue_depth=1, iterations=30
        )
        assert run_dsa_microbench(batched).throughput > 2 * run_dsa_microbench(base).throughput

    def test_wq_depth_improves_async_throughput(self):
        """Fig 4: deeper WQs raise async throughput to saturation."""
        shallow = MicrobenchConfig(
            transfer_size=4 * KB, queue_depth=2, wq_size=2, iterations=150
        )
        deep = MicrobenchConfig(
            transfer_size=4 * KB, queue_depth=32, wq_size=32, iterations=150
        )
        t_shallow = run_dsa_microbench(shallow).throughput
        t_deep = run_dsa_microbench(deep).throughput
        assert t_deep > 1.5 * t_shallow

    def test_more_engines_help_small_transfers(self):
        """Fig 7 / G5: PE-level parallelism pays off at small sizes.

        A batch is processed by one engine, so batched submission (which
        removes the submitting core as the bottleneck) exposes the
        engine count: more PEs drain concurrent batches in parallel.
        """
        one = MicrobenchConfig(
            transfer_size=512,
            batch_size=8,
            queue_depth=16,
            engines_per_group=1,
            iterations=100,
        )
        four = MicrobenchConfig(
            transfer_size=512,
            batch_size=8,
            queue_depth=16,
            engines_per_group=4,
            iterations=100,
        )
        assert run_dsa_microbench(four).throughput > 2 * run_dsa_microbench(one).throughput

    def test_single_engine_saturates_large_transfers(self):
        """Fig 7: for big transfers one PE already hits the fabric cap."""
        one = MicrobenchConfig(
            transfer_size=256 * KB, queue_depth=16, engines_per_group=1, iterations=60
        )
        four = MicrobenchConfig(
            transfer_size=256 * KB, queue_depth=16, engines_per_group=4, iterations=60
        )
        t_one = run_dsa_microbench(one).throughput
        t_four = run_dsa_microbench(four).throughput
        assert t_four < 1.1 * t_one

    def test_swq_single_thread_slower_than_dwq(self):
        """Fig 3/9: ENQCMD round trips throttle one-thread SWQ use."""
        dwq = MicrobenchConfig(transfer_size=4 * KB, queue_depth=32, iterations=200)
        swq = MicrobenchConfig(
            transfer_size=4 * KB,
            queue_depth=32,
            wq_mode=WqMode.SHARED,
            iterations=200,
        )
        assert run_dsa_microbench(dwq).throughput > 1.5 * run_dsa_microbench(swq).throughput

    def test_swq_batching_recovers_throughput(self):
        """Fig 3: an SWQ batch of n ~ n streaming cores."""
        flat = MicrobenchConfig(
            transfer_size=4 * KB, queue_depth=16, wq_mode=WqMode.SHARED, iterations=150
        )
        batched = MicrobenchConfig(
            transfer_size=4 * KB,
            batch_size=8,
            queue_depth=16,
            wq_mode=WqMode.SHARED,
            iterations=60,
        )
        assert (
            run_dsa_microbench(batched).throughput
            > 2 * run_dsa_microbench(flat).throughput
        )

    def test_dsa_over_cbdma_average_near_2x(self):
        """§4.2: DSA ~2.1x CBDMA across transfer sizes."""
        ratios = []
        for size in (4 * KB, 64 * KB, 1 * MB):
            cfg = MicrobenchConfig(transfer_size=size, queue_depth=32, iterations=100)
            ratios.append(
                run_dsa_microbench(cfg).throughput / run_cbdma_microbench(cfg).throughput
            )
        average = sum(ratios) / len(ratios)
        assert 1.7 <= average <= 2.6

    def test_multi_device_scaling_then_leaky_collapse(self):
        """Fig 10: linear scaling at 64 KB; 4-device drop at 1 MB."""
        small = []
        for n in (1, 2, 4):
            cfg = MicrobenchConfig(
                transfer_size=64 * KB,
                queue_depth=16,
                n_devices=n,
                n_workers=n,
                iterations=60,
            )
            small.append(run_dsa_microbench(cfg).throughput)
        assert small[1] == pytest.approx(2 * small[0], rel=0.15)
        assert small[2] == pytest.approx(4 * small[0], rel=0.15)

        big = MicrobenchConfig(
            transfer_size=1 * MB, queue_depth=16, n_devices=4, n_workers=4, iterations=40
        )
        throughput = run_dsa_microbench(big).throughput
        assert throughput < 0.85 * small[2]  # leaky-DMA drop
        assert throughput > 60.0  # but still far above one device

    def test_remote_numa_throughput_close_to_local(self):
        """Fig 6a: pipelining hides the UPI hop."""
        local = MicrobenchConfig(transfer_size=64 * KB, queue_depth=32, iterations=100)
        remote = MicrobenchConfig(
            transfer_size=64 * KB, queue_depth=32, iterations=100, src_node=1, dst_node=1
        )
        t_local = run_dsa_microbench(local).throughput
        t_remote = run_dsa_microbench(remote).throughput
        assert t_remote > 0.9 * t_local

    def test_split_buffers_beat_both_remote_sync_latency(self):
        """Fig 6a: split src/dst locations beat both-remote, and the
        same-node turnaround penalty is visible against pure local."""
        same = MicrobenchConfig(transfer_size=4 * KB, queue_depth=1, iterations=40)
        split = MicrobenchConfig(
            transfer_size=4 * KB, queue_depth=1, iterations=40, dst_node=1
        )
        both_remote = MicrobenchConfig(
            transfer_size=4 * KB, queue_depth=1, iterations=40, src_node=1, dst_node=1
        )
        lat_same = run_dsa_microbench(same).mean_latency_ns
        lat_split = run_dsa_microbench(split).mean_latency_ns
        lat_remote = run_dsa_microbench(both_remote).mean_latency_ns
        assert lat_split < lat_remote
        # Same-node copies pay a read/write turnaround; the gap to the
        # split configuration stays within one UPI hop.
        assert lat_split - lat_same < platform_hop_bound()

    def test_cxl_ordering(self):
        """Fig 6b / G4: D->D > C->D > D->C > C->C."""
        results = {}
        for label, (src, dst) in {
            "dram_to_dram": (0, 0),
            "cxl_to_dram": (2, 0),
            "dram_to_cxl": (0, 2),
            "cxl_to_cxl": (2, 2),
        }.items():
            cfg = MicrobenchConfig(
                transfer_size=64 * KB,
                queue_depth=32,
                iterations=60,
                src_node=src,
                dst_node=dst,
            )
            results[label] = run_dsa_microbench(cfg).throughput
        assert results["dram_to_dram"] > results["cxl_to_dram"]
        assert results["cxl_to_dram"] > results["dram_to_cxl"]
        assert results["dram_to_cxl"] > results["cxl_to_cxl"]

    def test_huge_pages_barely_change_throughput(self):
        """Fig 8: page size has little effect."""
        from repro.mem.pagetable import PAGE_2M

        base = MicrobenchConfig(transfer_size=256 * KB, queue_depth=32, iterations=60)
        huge = MicrobenchConfig(
            transfer_size=256 * KB, queue_depth=32, iterations=60, page_size=PAGE_2M
        )
        t_base = run_dsa_microbench(base).throughput
        t_huge = run_dsa_microbench(huge).throughput
        assert t_huge == pytest.approx(t_base, rel=0.05)

    def test_llc_sourced_faster_than_dram_sourced_sync(self):
        """Fig 15: LLC-resident sources cut sync latency."""
        dram = MicrobenchConfig(transfer_size=4 * KB, queue_depth=1, iterations=40)
        llc = MicrobenchConfig(
            transfer_size=4 * KB, queue_depth=1, iterations=40, src_in_llc=True
        )
        assert (
            run_dsa_microbench(llc).mean_latency_ns
            < run_dsa_microbench(dram).mean_latency_ns
        )

    def test_umwait_dominates_at_4kb(self):
        """Fig 11: most cycles go to UMWAIT at >= 4 KB transfers."""
        from repro.runtime.wait import WaitMode

        cfg = MicrobenchConfig(
            transfer_size=4 * KB,
            queue_depth=1,
            iterations=60,
            wait_mode=WaitMode.UMWAIT,
        )
        result = run_dsa_microbench(cfg)
        assert result.umwait_fraction() > 0.5
