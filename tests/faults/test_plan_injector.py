"""Unit tests for FaultPlan validation and FaultInjector decisions."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    active_injector,
    injection,
    install_injector,
    uninstall_injector,
)
from repro.sim.rng import install_seed, uninstall_seed

PAGE = 4096


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    uninstall_injector()
    uninstall_seed()


class TestFaultPlan:
    def test_zero_plan_injects_nothing(self):
        assert not FaultPlan().injects_anything

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"page_fault_rate": 0.1},
            {"scripted_vas": (4096,)},
            {"atc_shootdown_every": 8},
            {"swq_reject_rate": 0.5},
            {"device_reset_at": (1000.0,)},
        ],
    )
    def test_any_knob_enables(self, kwargs):
        assert FaultPlan(**kwargs).injects_anything

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"page_fault_rate": 1.5},
            {"page_fault_rate": -0.1},
            {"major_fault_fraction": 2.0},
            {"minor_fault_ns": -1.0},
            {"atc_shootdown_every": -1},
            {"swq_reject_rate": 1.1},
            {"swq_burst_length": 0},
            {"device_reset_window_ns": 0.0},
            {"device_reset_at": (-5.0,)},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs).validate()

    def test_service_latencies(self):
        plan = FaultPlan(minor_fault_ns=10.0, major_fault_ns=20.0)
        assert plan.service_latency_ns(FaultKind.MINOR) == 10.0
        assert plan.service_latency_ns(FaultKind.MAJOR) == 20.0


class TestInjectorPageFaults:
    def test_rate_zero_never_faults(self):
        injector = FaultInjector(FaultPlan(seed=1))
        assert all(
            injector.page_fault(0, i * PAGE) is None for i in range(100)
        )

    def test_rate_one_always_faults(self):
        injector = FaultInjector(FaultPlan(seed=1, page_fault_rate=1.0))
        assert all(
            injector.page_fault(0, i * PAGE) is not None for i in range(50)
        )
        assert injector.injected_page_faults == 50

    def test_scripted_va_fires_once(self):
        injector = FaultInjector(FaultPlan(seed=1, scripted_vas=(PAGE + 100,)))
        # Any address in the scripted page triggers, exactly once.
        assert injector.page_fault(0, PAGE) is not None
        assert injector.page_fault(0, PAGE) is None

    def test_fault_once_per_page(self):
        plan = FaultPlan(seed=1, page_fault_rate=1.0, fault_once_per_page=True)
        injector = FaultInjector(plan)
        assert injector.page_fault(7, 0) is not None
        assert injector.page_fault(7, 0) is None
        # A different PASID's page 0 still faults.
        assert injector.page_fault(8, 0) is not None

    def test_major_fraction(self):
        plan = FaultPlan(seed=2, page_fault_rate=1.0, major_fault_fraction=1.0)
        injector = FaultInjector(plan)
        assert injector.page_fault(0, 0) is FaultKind.MAJOR
        plan = FaultPlan(seed=2, page_fault_rate=1.0, major_fault_fraction=0.0)
        injector = FaultInjector(plan)
        assert injector.page_fault(0, 0) is FaultKind.MINOR

    def test_same_seed_same_sequence(self):
        a = FaultInjector(FaultPlan(seed=9, page_fault_rate=0.3))
        b = FaultInjector(FaultPlan(seed=9, page_fault_rate=0.3))
        decisions_a = [a.page_fault(0, i * PAGE) for i in range(200)]
        decisions_b = [b.page_fault(0, i * PAGE) for i in range(200)]
        assert decisions_a == decisions_b
        assert any(d is not None for d in decisions_a)
        assert any(d is None for d in decisions_a)

    def test_seed_none_uses_installed_seed(self):
        install_seed(1234)
        a = FaultInjector(FaultPlan(page_fault_rate=0.3))
        decisions_a = [a.page_fault(0, i * PAGE) for i in range(100)]
        install_seed(1234)
        b = FaultInjector(FaultPlan(page_fault_rate=0.3))
        decisions_b = [b.page_fault(0, i * PAGE) for i in range(100)]
        assert decisions_a == decisions_b


class TestInjectorOtherSites:
    def test_shootdown_cadence(self):
        injector = FaultInjector(FaultPlan(seed=1, atc_shootdown_every=3))
        hits = [injector.shootdown_due() for _ in range(9)]
        assert hits == [False, False, True] * 3
        assert injector.injected_shootdowns == 3

    def test_swq_burst(self):
        injector = FaultInjector(
            FaultPlan(seed=1, swq_reject_rate=1.0, swq_burst_length=3)
        )
        # Every draw starts a burst of 3 consecutive rejections.
        assert [injector.swq_reject() for _ in range(3)] == [True, True, True]
        assert injector.injected_swq_rejects == 3

    def test_device_reset_window(self):
        plan = FaultPlan(seed=1, device_reset_at=(1000.0,), device_reset_window_ns=50.0)
        injector = FaultInjector(plan)
        assert not injector.device_reset(999.0)
        assert injector.device_reset(1000.0)
        assert injector.device_reset(1049.0)
        assert not injector.device_reset(1050.0)


class TestInstallPattern:
    def test_disabled_plan_reads_as_absent(self):
        install_injector(FaultPlan())
        assert active_injector() is None

    def test_install_and_uninstall(self):
        injector = install_injector(FaultPlan(page_fault_rate=0.5))
        assert active_injector() is injector
        uninstall_injector()
        assert active_injector() is None

    def test_install_rejects_other_types(self):
        with pytest.raises(TypeError):
            install_injector("not a plan")

    def test_injection_context_restores_previous(self):
        outer = install_injector(FaultPlan(page_fault_rate=0.5))
        with injection(FaultPlan(page_fault_rate=1.0)) as inner:
            assert active_injector() is inner
        assert active_injector() is outer
