"""BOF=0 engine semantics: partial completions up to the faulting page."""

import numpy as np
import pytest

from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import Opcode
from repro.faults import FaultPlan, injection, uninstall_injector
from repro.mem import AddressSpace
from repro.platform import spr_platform
from repro.runtime.dml import Dml, DmlPath
from repro.sim import make_rng

KB = 1024
PAGE = 4096


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    uninstall_injector()


def build_stack(backed=False):
    platform = spr_platform()
    space = AddressSpace()
    dml = Dml(
        platform.env,
        [platform.open_portal("dsa0", 0, space)],
        kernels=platform.kernels,
        costs=platform.costs,
        space=space,
    )
    return platform, space, dml


def run_hw(platform, dml, core, descriptor):
    out = {}

    def proc(env):
        out["status"] = yield from dml.execute(
            core, descriptor, path=DmlPath.HARDWARE
        )

    platform.env.process(proc(platform.env))
    platform.env.run()
    return out["status"]


class TestNaturalFaults:
    def test_partial_completion_records_progress(self):
        """A BOF=0 memmove into a half-mapped source stops at the hole."""
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(16 * KB, prefault=False)
        dst = space.allocate(16 * KB, prefault=True)
        # Map only the first two source pages: fault at offset 8192.
        space.page_table.map_range(src.va, 2 * PAGE)
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 16 * KB, src=src, dst=dst, block_on_fault=False
        )
        status = run_hw(platform, dml, core, descriptor)
        assert status is StatusCode.PAGE_FAULT
        assert descriptor.completion.bytes_completed == 2 * PAGE
        assert descriptor.completion.fault_address == src.va + 2 * PAGE
        # The unserviced fault must NOT have mapped the page.
        assert not space.page_table.is_mapped(src.va + 2 * PAGE)

    def test_fault_on_first_page_completes_zero_bytes(self):
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(16 * KB, prefault=False)
        dst = space.allocate(16 * KB, prefault=True)
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 16 * KB, src=src, dst=dst, block_on_fault=False
        )
        status = run_hw(platform, dml, core, descriptor)
        assert status is StatusCode.PAGE_FAULT
        assert descriptor.completion.bytes_completed == 0
        assert descriptor.completion.fault_address == src.va

    def test_bof1_still_services_faults_inline(self):
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(16 * KB, prefault=False)
        dst = space.allocate(16 * KB, prefault=True)
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 16 * KB, src=src, dst=dst, block_on_fault=True
        )
        status = run_hw(platform, dml, core, descriptor)
        assert status is StatusCode.SUCCESS
        assert descriptor.completion.bytes_completed == 16 * KB

    def test_partial_head_functionally_executes(self):
        """The completed head's bytes actually land in the destination."""
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(16 * KB, prefault=False, backed=True)
        dst = space.allocate(16 * KB, prefault=True, backed=True)
        space.page_table.map_range(src.va, 2 * PAGE)
        src.fill_random(make_rng(3))
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 16 * KB, src=src, dst=dst, block_on_fault=False
        )
        run_hw(platform, dml, core, descriptor)
        assert np.array_equal(dst.data[: 2 * PAGE], src.data[: 2 * PAGE])
        assert not np.array_equal(dst.data[2 * PAGE :], src.data[2 * PAGE :])


class TestInjectedFaults:
    def test_scripted_fault_mid_transfer(self):
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(32 * KB, prefault=True)
        dst = space.allocate(32 * KB, prefault=True)
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 32 * KB, src=src, dst=dst, block_on_fault=False
        )
        with injection(FaultPlan(seed=1, scripted_vas=(src.va + 3 * PAGE,))):
            status = run_hw(platform, dml, core, descriptor)
        assert status is StatusCode.PAGE_FAULT
        assert descriptor.completion.bytes_completed == 3 * PAGE
        assert descriptor.completion.fault_address == src.va + 3 * PAGE
        assert platform.env.metrics.counter("dsa0.partial_completions").value == 1
        assert platform.env.metrics.counter("dsa0.atc.injected_faults").value == 1

    def test_injected_fault_blocking_charges_service_time(self):
        """BOF=1 + injected fault: success, but slower than fault-free."""

        def one_run(script):
            platform, space, dml = build_stack()
            core = platform.core(0)
            src = space.allocate(16 * KB, prefault=True)
            dst = space.allocate(16 * KB, prefault=True)
            descriptor = dml.make_descriptor(
                Opcode.MEMMOVE, 16 * KB, src=src, dst=dst, block_on_fault=True
            )
            vas = (src.va,) if script else ()
            with injection(FaultPlan(seed=1, scripted_vas=vas, minor_fault_ns=15_000.0)):
                status = run_hw(platform, dml, core, descriptor)
            assert status is StatusCode.SUCCESS
            return platform.env.now

        clean = one_run(script=False)
        faulted = one_run(script=True)
        assert faulted >= clean + 15_000.0

    def test_major_faults_cost_more_than_minor(self):
        def one_run(major):
            platform, space, dml = build_stack()
            core = platform.core(0)
            src = space.allocate(16 * KB, prefault=True)
            dst = space.allocate(16 * KB, prefault=True)
            descriptor = dml.make_descriptor(
                Opcode.MEMMOVE, 16 * KB, src=src, dst=dst, block_on_fault=True
            )
            plan = FaultPlan(
                seed=1,
                scripted_vas=(src.va,),
                major_fault_fraction=1.0 if major else 0.0,
                minor_fault_ns=15_000.0,
                major_fault_ns=250_000.0,
            )
            with injection(plan):
                run_hw(platform, dml, core, descriptor)
            return platform.env.now

        assert one_run(major=True) > one_run(major=False) + 200_000.0


class TestDeviceReset:
    def test_reset_window_aborts_with_device_disabled(self):
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(16 * KB, prefault=True)
        dst = space.allocate(16 * KB, prefault=True)
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 16 * KB, src=src, dst=dst, block_on_fault=False
        )
        plan = FaultPlan(seed=1, device_reset_at=(0.0,), device_reset_window_ns=1e9)
        out = {}

        def proc(env):
            job = yield from dml.submit_async(core, descriptor)
            out["status"] = yield from dml.wait(core, job)

        with injection(plan):
            platform.env.process(proc(platform.env))
            platform.env.run()
        assert out["status"] is StatusCode.DEVICE_DISABLED
        assert descriptor.completion.bytes_completed == 0
        assert platform.env.metrics.counter("dsa0.reset_aborts").value == 1


class TestAtcShootdown:
    def test_shootdowns_flush_and_count(self):
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(64 * KB, prefault=True)
        dst = space.allocate(64 * KB, prefault=True)
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 64 * KB, src=src, dst=dst
        )
        with injection(FaultPlan(seed=1, atc_shootdown_every=5)):
            status = run_hw(platform, dml, core, descriptor)
        assert status is StatusCode.SUCCESS
        device = platform.driver.device("dsa0")
        assert platform.env.metrics.counter("dsa0.atc.shootdowns").value > 0
        # 32 pages translated, a flush every 5 translations: the cache
        # can never hold more than 5 entries.
        assert len(device.atc) <= 5


class TestSwqCongestion:
    def test_injected_rejects_force_enqcmd_retries(self):
        from repro.dsa.config import DeviceConfig, WqMode

        platform = spr_platform(
            device_config=DeviceConfig.single(mode=WqMode.SHARED)
        )
        space = AddressSpace()
        dml = Dml(
            platform.env,
            [platform.open_portal("dsa0", 0, space)],
            kernels=platform.kernels,
            costs=platform.costs,
            space=space,
        )
        core = platform.core(0)
        src = space.allocate(16 * KB, prefault=True)
        dst = space.allocate(16 * KB, prefault=True)
        # Bursty congestion: the ENQCMD loop retries through each burst
        # and every descriptor still lands.
        plan = FaultPlan(seed=123, swq_reject_rate=0.4, swq_burst_length=2)
        statuses = []

        def proc(env):
            for _ in range(8):
                descriptor = dml.make_descriptor(
                    Opcode.MEMMOVE, 16 * KB, src=src, dst=dst
                )
                status = yield from dml.execute(
                    core, descriptor, path=DmlPath.HARDWARE
                )
                statuses.append(status)

        with injection(plan) as injector:
            platform.env.process(proc(platform.env))
            platform.env.run()
        assert statuses == [StatusCode.SUCCESS] * 8
        assert injector.injected_swq_rejects > 0
        wq = platform.driver.device("dsa0").wq(0)
        assert (
            platform.env.metrics.counter("dsa0.wq0.injected_rejects").value
            == injector.injected_swq_rejects
        )
        assert wq.rejected >= injector.injected_swq_rejects
