"""RetryPolicy / recover(): resume, backoff bounds, degradation."""

import numpy as np
import pytest

from repro.cpu.core import CycleCategory
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import Opcode
from repro.faults import FaultPlan, injection, uninstall_injector
from repro.mem import AddressSpace
from repro.platform import spr_platform
from repro.runtime.dml import Dml
from repro.runtime.dto import Dto
from repro.dsa.descriptor import DescriptorPool
from repro.runtime.recovery import RetryPolicy, recover
from repro.sim import make_rng

KB = 1024
PAGE = 4096


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    uninstall_injector()


def build_stack():
    platform = spr_platform()
    space = AddressSpace()
    dml = Dml(
        platform.env,
        [platform.open_portal("dsa0", 0, space)],
        kernels=platform.kernels,
        costs=platform.costs,
        space=space,
    )
    return platform, space, dml


def run_recover(platform, dml, core, descriptor, policy):
    out = {}

    def proc(env):
        out["result"] = yield from recover(dml, core, descriptor, policy)

    platform.env.process(proc(platform.env))
    platform.env.run()
    return out["result"]


class TestRetryPolicy:
    def test_backoff_is_bounded_exponential(self):
        policy = RetryPolicy(
            backoff_base_ns=1_000.0, backoff_multiplier=2.0, backoff_cap_ns=6_000.0
        )
        assert policy.backoff_ns(1) == 1_000.0
        assert policy.backoff_ns(2) == 2_000.0
        assert policy.backoff_ns(3) == 4_000.0
        assert policy.backoff_ns(4) == 6_000.0  # capped, not 8000
        assert policy.backoff_ns(10) == 6_000.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_ns": -1.0},
            {"backoff_multiplier": 0.5},
            {"deadline_ns": 0.0},
            {"touch_page_ns": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_rejects_attempt_zero(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ns(0)


class TestResume:
    def test_resumes_from_fault_offset_not_full_redo(self):
        """16 KiB memmove faulting at 8 KiB: the head is not re-copied."""
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(16 * KB, prefault=False, backed=True)
        dst = space.allocate(16 * KB, prefault=True, backed=True)
        space.page_table.map_range(src.va, 2 * PAGE)
        src.fill_random(make_rng(11))
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 16 * KB, src=src, dst=dst, block_on_fault=False
        )
        policy = RetryPolicy(max_retries=4)
        result = run_recover(platform, dml, core, descriptor, policy)
        assert result.status is StatusCode.SUCCESS
        assert result.degraded is False
        assert result.bytes_software == 0
        # All 16 KiB moved by hardware across the resumed attempts.
        assert result.bytes_hardware == 16 * KB
        assert result.faults >= 1
        assert result.attempts == result.faults + 1
        assert np.array_equal(dst.data, src.data)
        # The caller's descriptor carries the final outcome.
        assert descriptor.completion.status is StatusCode.SUCCESS
        assert descriptor.completion.bytes_completed == 16 * KB
        # Recovery touched the faulting pages, one per resume.
        assert platform.env.metrics.counter("recovery.resumes").value == result.faults

    def test_touch_resubmit_makes_progress_page_by_page(self):
        """Each retry maps exactly the faulting page, so a fully
        unmapped 3-page source needs one resume per page hole."""
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(3 * PAGE, prefault=False)
        dst = space.allocate(3 * PAGE, prefault=True)
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 3 * PAGE, src=src, dst=dst, block_on_fault=False
        )
        result = run_recover(platform, dml, core, descriptor, RetryPolicy(max_retries=5))
        assert result.status is StatusCode.SUCCESS
        assert result.faults == 3
        assert result.attempts == 4
        assert result.bytes_hardware == 3 * PAGE

    def test_backoff_time_accrues_as_idle(self):
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(2 * PAGE, prefault=False)
        dst = space.allocate(2 * PAGE, prefault=True)
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 2 * PAGE, src=src, dst=dst, block_on_fault=False
        )
        policy = RetryPolicy(
            max_retries=4, backoff_base_ns=1_000.0, backoff_multiplier=2.0,
            backoff_cap_ns=64_000.0,
        )
        result = run_recover(platform, dml, core, descriptor, policy)
        assert result.status is StatusCode.SUCCESS
        # Two faults -> backoffs of 1000 and 2000 ns.
        assert result.backoff_ns_total == 3_000.0
        assert core.time_in(CycleCategory.IDLE) >= 3_000.0
        assert platform.env.metrics.counter("recovery.backoff_ns").value == 3_000.0


class TestDegradation:
    def test_exhausted_retries_degrade_tail_to_software(self):
        """max_retries=0: the fault immediately degrades, and only the
        unfinished tail runs on the CPU."""
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(16 * KB, prefault=False, backed=True)
        dst = space.allocate(16 * KB, prefault=True, backed=True)
        space.page_table.map_range(src.va, 2 * PAGE)
        src.fill_random(make_rng(12))
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 16 * KB, src=src, dst=dst, block_on_fault=False
        )
        policy = RetryPolicy(max_retries=0)
        result = run_recover(platform, dml, core, descriptor, policy)
        assert result.status is StatusCode.SUCCESS
        assert result.degraded is True
        assert result.bytes_hardware == 2 * PAGE
        assert result.bytes_software == 16 * KB - 2 * PAGE
        assert np.array_equal(dst.data, src.data)
        assert descriptor.completion.bytes_completed == 16 * KB
        assert platform.env.metrics.counter("recovery.degraded").value == 1

    def test_degradation_disabled_surfaces_failure(self):
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(16 * KB, prefault=False)
        dst = space.allocate(16 * KB, prefault=True)
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 16 * KB, src=src, dst=dst, block_on_fault=False
        )
        policy = RetryPolicy(max_retries=0, degrade_to_software=False)
        result = run_recover(platform, dml, core, descriptor, policy)
        assert result.status is StatusCode.PAGE_FAULT
        assert result.degraded is True
        assert descriptor.completion.status is StatusCode.PAGE_FAULT

    def test_deadline_cuts_recovery_short(self):
        """A deadline shorter than the first backoff degrades at once."""
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(16 * KB, prefault=False, backed=True)
        dst = space.allocate(16 * KB, prefault=True, backed=True)
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 16 * KB, src=src, dst=dst, block_on_fault=False
        )
        policy = RetryPolicy(
            max_retries=10, backoff_base_ns=1e9, deadline_ns=1.0
        )
        result = run_recover(platform, dml, core, descriptor, policy)
        assert result.status is StatusCode.SUCCESS
        assert result.degraded is True
        assert result.attempts == 1
        assert platform.env.metrics.counter("recovery.deadline_exceeded").value == 1

    def test_device_reset_is_retryable_from_scratch(self):
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(16 * KB, prefault=True)
        dst = space.allocate(16 * KB, prefault=True)
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 16 * KB, src=src, dst=dst, block_on_fault=False
        )
        # Reset window covers the first dispatch only; the retry after
        # backoff lands outside it and succeeds.
        plan = FaultPlan(seed=1, device_reset_at=(0.0,), device_reset_window_ns=400.0)
        policy = RetryPolicy(max_retries=3, backoff_base_ns=2_000.0)
        with injection(plan):
            result = run_recover(platform, dml, core, descriptor, policy)
        assert result.status is StatusCode.SUCCESS
        assert result.faults == 1
        assert result.degraded is False
        assert result.bytes_hardware == 16 * KB
        assert descriptor.completion.bytes_completed == 16 * KB


class TestDtoIntegration:
    def test_dto_accounts_hardware_and_software_bytes_exactly(self):
        """The DTO fallback no longer redoes the whole transfer: bytes
        split between hardware progress and the software tail."""
        platform, space, dml = build_stack()
        dto = Dto(
            dml,
            min_size=1 * KB,
            policy=RetryPolicy(max_retries=0),
            block_on_fault=False,
        )
        core = platform.core(0)
        src = space.allocate(16 * KB, prefault=False)
        dst = space.allocate(16 * KB, prefault=True)
        space.page_table.map_range(src.va, 2 * PAGE)
        out = {}

        def proc(env):
            out["status"] = yield from dto.memcpy(core, dst, src, 16 * KB)

        platform.env.process(proc(platform.env))
        platform.env.run()
        assert out["status"] is StatusCode.SUCCESS
        assert dto.stats.fault_fallbacks == 1
        assert dto.stats.bytes_offloaded == 2 * PAGE
        assert dto.stats.bytes_software == 16 * KB - 2 * PAGE
        assert dto.stats.software == 1
        assert dto.stats.offloaded == 0

    def test_dto_full_recovery_counts_as_offloaded(self):
        platform, space, dml = build_stack()
        dto = Dto(
            dml,
            min_size=1 * KB,
            policy=RetryPolicy(max_retries=4),
            block_on_fault=False,
        )
        core = platform.core(0)
        src = space.allocate(16 * KB, prefault=False)
        dst = space.allocate(16 * KB, prefault=True)
        space.page_table.map_range(src.va, 2 * PAGE)
        out = {}

        def proc(env):
            out["status"] = yield from dto.memcpy(core, dst, src, 16 * KB)

        platform.env.process(proc(platform.env))
        platform.env.run()
        assert out["status"] is StatusCode.SUCCESS
        assert dto.stats.fault_fallbacks == 1
        assert dto.stats.bytes_offloaded == 16 * KB
        assert dto.stats.bytes_software == 0
        assert dto.stats.offloaded == 1
        assert dto.stats.software == 0

    def test_dto_default_contract_unchanged(self):
        """Stock DTO stays BOF=1: prefaulted large copies offload
        cleanly with no recovery involvement."""
        platform, space, dml = build_stack()
        dto = Dto(dml, min_size=8 * KB)
        core = platform.core(0)
        src = space.allocate(64 * KB)
        dst = space.allocate(64 * KB)
        out = {}

        def proc(env):
            out["status"] = yield from dto.memcpy(core, dst, src, 64 * KB)

        platform.env.process(proc(platform.env))
        platform.env.run()
        assert out["status"] is StatusCode.SUCCESS
        assert dto.stats.offloaded == 1
        assert dto.stats.bytes_offloaded == 64 * KB
        assert dto.stats.fault_fallbacks == 0
        assert platform.env.metrics.counter("recovery.faults").value == 0


class TestRecoveryDescriptorPool:
    def test_fault_storm_recycles_clones(self):
        """A multi-fault recovery allocates O(1) clones through the pool."""
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(3 * PAGE, prefault=False)
        dst = space.allocate(3 * PAGE, prefault=True)
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 3 * PAGE, src=src, dst=dst, block_on_fault=False
        )
        pool = DescriptorPool(limit=8)
        out = {}

        def proc(env):
            out["result"] = yield from recover(
                dml, core, descriptor, RetryPolicy(max_retries=5), pool=pool
            )

        platform.env.process(proc(platform.env))
        platform.env.run()
        result = out["result"]
        assert result.status is StatusCode.SUCCESS
        assert result.faults == 3
        # Resume 1 allocates the only clone; resumes 2..3 recycle it.
        assert pool.reuses == result.faults - 1
        # The terminal clone was parked again after propagation.
        assert len(pool) == 1
        assert descriptor.completion.bytes_completed == 3 * PAGE

    def test_pooled_and_unpooled_recovery_agree(self):
        for pool in (None, DescriptorPool()):
            platform, space, dml = build_stack()
            core = platform.core(0)
            src = space.allocate(16 * KB, prefault=False, backed=True)
            dst = space.allocate(16 * KB, prefault=True, backed=True)
            space.page_table.map_range(src.va, 2 * PAGE)
            src.fill_random(make_rng(11))
            descriptor = dml.make_descriptor(
                Opcode.MEMMOVE, 16 * KB, src=src, dst=dst, block_on_fault=False
            )
            out = {}

            def proc(env):
                out["result"] = yield from recover(
                    dml, core, descriptor, RetryPolicy(max_retries=4), pool=pool
                )

            platform.env.process(proc(platform.env))
            platform.env.run()
            assert out["result"].status is StatusCode.SUCCESS
            assert out["result"].bytes_hardware == 16 * KB
            assert np.array_equal(dst.data, src.data)
            out.setdefault("timings", []).append(platform.env.now)
