"""Regression pins for the satellite bugfixes and injection determinism.

Each test here guards one of the fixes that shipped with the fault
subsystem: the DTO full-redo fallback, the O(n) WorkQueue.pop, the
ENQCMD retry off-by-one (and its silent metrics on the raise path),
the hardwired BLOCK_ON_FAULT flag, and the requirement that seeded
injection is deterministic — serial, parallel, and disabled runs must
all agree.
"""

from collections import deque

import pytest

from repro.dsa.config import DeviceConfig, WqMode
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.exec import ParallelRunner
from repro.faults import FaultPlan, injection, install_injector, uninstall_injector
from repro.mem import AddressSpace
from repro.platform import spr_platform
from repro.runtime.dml import Dml
from repro.runtime.submit import submit

KB = 1024


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    uninstall_injector()


class TestWorkQueueDeque:
    def test_backing_store_is_a_deque(self):
        """pop() used list.pop(0): O(n) per descriptor, quadratic per
        burst.  The store must stay a deque."""
        platform = spr_platform()
        wq = platform.driver.device("dsa0").wq(0)
        assert isinstance(wq._items, deque)

    def test_fifo_preserved_under_interleaving(self):
        platform = spr_platform()
        device = platform.driver.device("dsa0")
        wq = device.wq(0)
        space = AddressSpace()
        dml = Dml(
            platform.env,
            [platform.open_portal("dsa0", 0, space)],
            kernels=platform.kernels,
            costs=platform.costs,
            space=space,
        )
        src = space.allocate(4 * KB)
        dst = space.allocate(4 * KB)
        descriptors = [
            dml.make_descriptor(Opcode.MEMMOVE, 4 * KB, src=src, dst=dst)
            for _ in range(6)
        ]
        for d in descriptors[:4]:
            assert wq.submit(d)
        assert wq.pop() is descriptors[0]
        assert wq.pop() is descriptors[1]
        for d in descriptors[4:]:
            assert wq.submit(d)
        assert [wq.pop() for _ in range(4)] == descriptors[2:6]


class TestEnqcmdRetryAccounting:
    def _swq_stack(self):
        platform = spr_platform(
            device_config=DeviceConfig.single(mode=WqMode.SHARED)
        )
        space = AddressSpace()
        dml = Dml(
            platform.env,
            [platform.open_portal("dsa0", 0, space)],
            kernels=platform.kernels,
            costs=platform.costs,
            space=space,
        )
        return platform, space, dml

    def test_raise_path_records_retries_and_bound_is_exact(self):
        """max_retries=N raises after exactly N failed ENQCMDs (the old
        ``>`` comparison allowed N+1), and the retries still land in
        the ``enqcmd_retries`` counter on the way out."""
        platform, space, dml = self._swq_stack()
        core = platform.core(0)
        src = space.allocate(4 * KB)
        dst = space.allocate(4 * KB)
        descriptor = dml.make_descriptor(Opcode.MEMMOVE, 4 * KB, src=src, dst=dst)
        raised = {}

        def proc(env):
            try:
                yield from submit(
                    env, core, dml.portals[0], descriptor, max_retries=3
                )
            except RuntimeError as err:
                raised["err"] = err

        # Every ENQCMD is rejected: the loop must give up at retry 3.
        install_injector(FaultPlan(seed=7, swq_reject_rate=1.0))
        platform.env.process(proc(platform.env))
        platform.env.run()
        assert "err" in raised
        counter = platform.env.metrics.counter("dsa0.wq0.enqcmd_retries")
        assert counter.value == 3


class TestMakeDescriptorBlockOnFault:
    def test_default_keeps_block_on_fault(self):
        platform, space, dml = _stack()
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 4 * KB, src=space.allocate(4 * KB),
            dst=space.allocate(4 * KB),
        )
        assert descriptor.flags & DescriptorFlags.BLOCK_ON_FAULT

    def test_flag_can_be_cleared(self):
        platform, space, dml = _stack()
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 4 * KB, src=space.allocate(4 * KB),
            dst=space.allocate(4 * KB), block_on_fault=False,
        )
        assert not descriptor.flags & DescriptorFlags.BLOCK_ON_FAULT
        assert descriptor.flags & DescriptorFlags.REQUEST_COMPLETION

    def test_independent_of_cache_control(self):
        platform, space, dml = _stack()
        descriptor = dml.make_descriptor(
            Opcode.MEMMOVE, 4 * KB, src=space.allocate(4 * KB),
            dst=space.allocate(4 * KB), cache_control=True, block_on_fault=False,
        )
        assert descriptor.flags & DescriptorFlags.CACHE_CONTROL
        assert not descriptor.flags & DescriptorFlags.BLOCK_ON_FAULT


def _stack():
    platform = spr_platform()
    space = AddressSpace()
    dml = Dml(
        platform.env,
        [platform.open_portal("dsa0", 0, space)],
        kernels=platform.kernels,
        costs=platform.costs,
        space=space,
    )
    return platform, space, dml


class TestDeterminism:
    def test_disabled_injector_is_byte_identical(self):
        """An installed-but-empty FaultPlan must not perturb anything:
        the rendered experiment output matches a plain run exactly."""
        from repro.experiments import run_experiment

        baseline = run_experiment("fig2", quick=True).render()
        install_injector(FaultPlan())  # no knobs set: injects nothing
        try:
            shadowed = run_experiment("fig2", quick=True).render()
        finally:
            uninstall_injector()
        assert shadowed == baseline

    def test_seeded_sweep_reproduces(self):
        """Two quick fault-sweep runs produce identical renders: every
        injection decision comes from the derived seed streams."""
        from repro.experiments import run_experiment

        first = run_experiment("faults", quick=True).render()
        second = run_experiment("faults", quick=True).render()
        assert first == second

    def test_serial_matches_parallel_workers(self):
        """The fault sweep injects identically in-process and in worker
        processes: ``--jobs 2`` output equals the serial output."""
        serial = ParallelRunner(jobs=1, quick=True, cache=None)
        parallel = ParallelRunner(jobs=2, quick=True, cache=None)
        targets = ["faults", "fig2"]
        serial_out = {o.exp_id: o.result.render() for o in serial.run_iter(targets)}
        parallel_out = {o.exp_id: o.result.render() for o in parallel.run_iter(targets)}
        assert serial_out == parallel_out
