"""Property-based tests for the fair-share link model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.link import FairShareLink
from repro.sim import Environment


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0.0, 500.0), st.floats(1.0, 1e5)),
        min_size=1,
        max_size=12,
    ),
    st.floats(1.0, 50.0),
)
def test_all_flows_complete_and_respect_capacity(flows, bandwidth):
    """Total service time is bounded below by total bytes / bandwidth."""
    env = Environment()
    link = FairShareLink(env, bandwidth=bandwidth)
    done = []

    def proc(env, delay, nbytes):
        yield env.timeout(delay)
        yield link.transfer(nbytes)
        done.append(env.now)

    for delay, nbytes in flows:
        env.process(proc(env, delay, nbytes))
    env.run()
    assert len(done) == len(flows)
    total_bytes = sum(nbytes for _d, nbytes in flows)
    first_start = min(delay for delay, _n in flows)
    makespan = max(done) - first_start
    assert makespan >= total_bytes / bandwidth - 1e-6


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(1.0, 1e5), min_size=1, max_size=10),
    st.floats(1.0, 50.0),
)
def test_single_flow_lower_bound(sizes, bandwidth):
    """No flow finishes faster than its solo transfer time."""
    env = Environment()
    link = FairShareLink(env, bandwidth=bandwidth)
    completions = {}

    def proc(env, index, nbytes):
        start = env.now
        yield link.transfer(nbytes)
        completions[index] = env.now - start

    for index, nbytes in enumerate(sizes):
        env.process(proc(env, index, nbytes))
    env.run()
    for index, nbytes in enumerate(sizes):
        assert completions[index] >= nbytes / bandwidth - 1e-6


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 10), st.floats(10.0, 1e5))
def test_equal_simultaneous_flows_finish_together(count, nbytes):
    env = Environment()
    link = FairShareLink(env, bandwidth=8.0)
    done = []

    def proc(env):
        yield link.transfer(nbytes)
        done.append(env.now)

    for _ in range(count):
        env.process(proc(env))
    env.run()
    assert max(done) == pytest.approx(min(done))
    assert max(done) == pytest.approx(count * nbytes / 8.0)


@settings(max_examples=40, deadline=None)
@given(st.floats(1.0, 1e6), st.floats(0.5, 20.0), st.floats(0.1, 0.99))
def test_per_flow_cap_binds_single_flow(nbytes, bandwidth, cap_fraction):
    cap = bandwidth * cap_fraction
    env = Environment()
    link = FairShareLink(env, bandwidth=bandwidth, per_flow_cap=cap)
    done = []

    def proc(env):
        yield link.transfer(nbytes)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done[0] == pytest.approx(nbytes / cap)


def test_bytes_completed_tracks_totals():
    env = Environment()
    link = FairShareLink(env, bandwidth=10.0)
    for nbytes in (100.0, 200.0, 300.0):
        link.transfer(nbytes)
    env.run()
    assert link.bytes_completed == pytest.approx(600.0)
