"""Unit tests for the shared LLC occupancy model."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.cache import SharedLLC

MB = 1024 * 1024


def make_llc(size=100 * MB, ways=10, ddio_ways=2):
    return SharedLLC(size=size, ways=ways, ddio_ways=ddio_ways)


class TestCapacities:
    def test_io_capacity_is_way_fraction(self):
        llc = make_llc(size=100 * MB, ways=10, ddio_ways=2)
        assert llc.io_capacity == pytest.approx(20 * MB)
        assert llc.main_capacity == pytest.approx(80 * MB)

    def test_invalid_way_split_rejected(self):
        with pytest.raises(ValueError):
            SharedLLC(size=MB, ways=4, ddio_ways=4)
        with pytest.raises(ValueError):
            SharedLLC(size=MB, ways=4, ddio_ways=0)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            SharedLLC(size=0)


class TestTouch:
    def test_touch_grows_occupancy(self):
        llc = make_llc()
        inserted = llc.touch("a", 10 * MB)
        assert inserted == 10 * MB
        assert llc.occupancy("a") == 10 * MB

    def test_max_occupancy_caps_growth(self):
        llc = make_llc()
        llc.touch("a", 10 * MB, max_occupancy=4 * MB)
        llc.touch("a", 10 * MB, max_occupancy=4 * MB)
        assert llc.occupancy("a") == 4 * MB

    def test_negative_touch_rejected(self):
        llc = make_llc()
        with pytest.raises(ValueError):
            llc.touch("a", -1)

    def test_full_cache_evicts_proportionally(self):
        llc = make_llc(size=100 * MB, ways=10, ddio_ways=2)  # main = 80 MB
        llc.touch("victim1", 60 * MB)
        llc.touch("victim2", 20 * MB)
        llc.touch("streamer", 40 * MB)
        # 40 MB incoming into a full 80 MB region: victims shrink 50%.
        assert llc.occupancy("victim1") == pytest.approx(30 * MB)
        assert llc.occupancy("victim2") == pytest.approx(10 * MB)
        assert llc.occupancy("streamer") == pytest.approx(40 * MB)

    def test_total_never_exceeds_main_capacity(self):
        llc = make_llc()
        for agent in "abcdef":
            llc.touch(agent, 50 * MB)
        assert llc.total_occupancy <= llc.main_capacity * (1 + 1e-9)

    @given(st.lists(st.tuples(st.sampled_from("abcd"), st.integers(1, 64 * MB)), max_size=30))
    def test_invariants_under_random_touches(self, touches):
        llc = make_llc()
        for agent, size in touches:
            llc.touch(agent, size)
        assert llc.total_occupancy <= llc.main_capacity * (1 + 1e-9)
        for agent in "abcd":
            assert llc.occupancy(agent) >= 0

    def test_io_region_confined_to_ddio_ways(self):
        llc = make_llc(size=100 * MB, ways=10, ddio_ways=2)
        llc.touch("dsa", 50 * MB, io=True)
        assert llc.occupancy("dsa") <= llc.io_capacity * (1 + 1e-9)

    def test_io_writes_do_not_evict_core_data(self):
        llc = make_llc(size=100 * MB, ways=10, ddio_ways=2)
        llc.touch("core", 80 * MB)  # fill the main region
        before = llc.occupancy("core")
        llc.touch("dsa", 30 * MB, io=True)
        assert llc.occupancy("core") == before

    def test_core_streaming_evicts_corunner(self):
        """The Fig 12b scenario: software memcpy dominates the LLC."""
        llc = make_llc()
        llc.touch("xmem", 4 * MB, max_occupancy=4 * MB)
        llc.touch("memcpy", 500 * MB)
        assert llc.occupancy("xmem") < 1 * MB
        assert llc.occupancy("memcpy") > 70 * MB


class TestHitFraction:
    def test_fully_resident_working_set(self):
        llc = make_llc()
        llc.touch("a", 4 * MB, max_occupancy=4 * MB)
        assert llc.hit_fraction("a", 4 * MB) == pytest.approx(1.0)

    def test_zero_working_set_hits(self):
        llc = make_llc()
        assert llc.hit_fraction("a", 0) == 1.0

    def test_partial_residency(self):
        llc = make_llc()
        llc.touch("a", 2 * MB, max_occupancy=2 * MB)
        assert llc.hit_fraction("a", 8 * MB) == pytest.approx(0.25)


class TestShrinkAndClear:
    def test_shrink_reduces_occupancy(self):
        llc = make_llc()
        llc.touch("a", 10 * MB)
        llc.shrink("a", 4 * MB)
        assert llc.occupancy("a") == 6 * MB

    def test_shrink_clamps_at_zero(self):
        llc = make_llc()
        llc.touch("a", MB)
        llc.shrink("a", 10 * MB)
        assert llc.occupancy("a") == 0

    def test_clear_removes_both_regions(self):
        llc = make_llc()
        llc.touch("a", MB)
        llc.touch("a", MB, io=True)
        llc.clear("a")
        assert llc.occupancy("a") == 0


class TestLeakyPressure:
    def test_not_leaky_below_ddio_capacity(self):
        llc = make_llc(size=100 * MB, ways=10, ddio_ways=2)
        llc.register_io_stream("dsa0", 10 * MB, demand_rate=30.0)
        assert not llc.leaky

    def test_not_leaky_when_demand_below_drain(self):
        # One device with a huge footprint still drains fine (Fig 10:
        # a single DSA keeps 30 GB/s even at 1 MB transfers).
        llc = make_llc(size=100 * MB, ways=10, ddio_ways=2)
        llc.register_io_stream("dsa0", 32 * MB, demand_rate=30.0)
        assert not llc.leaky

    def test_leaky_needs_footprint_and_demand(self):
        # Three devices streaming large transfers: footprint overflows
        # the DDIO ways and demand exceeds the drain rate.
        llc = make_llc(size=100 * MB, ways=10, ddio_ways=2)
        for device in range(3):
            llc.register_io_stream(f"dsa{device}", 8 * MB, demand_rate=30.0)
        assert llc.io_pressure == 24 * MB
        assert llc.io_write_demand == 90.0
        assert llc.leaky

    def test_high_demand_small_footprint_not_leaky(self):
        # Four devices on small transfers: destinations fit in DDIO.
        llc = make_llc(size=100 * MB, ways=10, ddio_ways=2)
        for device in range(4):
            llc.register_io_stream(f"dsa{device}", 1 * MB, demand_rate=30.0)
        assert not llc.leaky

    def test_unregister_relieves_pressure(self):
        llc = make_llc()
        llc.register_io_stream("dsa0", 100 * MB, demand_rate=100.0)
        llc.unregister_io_stream("dsa0")
        assert not llc.leaky

    def test_negative_footprint_rejected(self):
        llc = make_llc()
        with pytest.raises(ValueError):
            llc.register_io_stream("dsa0", -1)
        with pytest.raises(ValueError):
            llc.register_io_stream("dsa0", 1, demand_rate=-2)


class TestHistory:
    def test_history_requires_enable(self):
        llc = make_llc()
        with pytest.raises(RuntimeError):
            llc.history("a")

    def test_history_records_occupancy_changes(self):
        llc = make_llc()
        llc.enable_history()
        llc.touch("a", MB, now=1.0)
        llc.touch("a", MB, now=2.0)
        points = llc.history("a")
        assert [t for t, _ in points] == [1.0, 2.0]
        assert points[-1][1] == 2 * MB
