"""Unit tests for page tables, TLB, and IOMMU translation."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.iommu import Iommu, IommuParams
from repro.mem.pagetable import PAGE_2M, PAGE_4K, PageTable
from repro.mem.tlb import Tlb


class TestPageTable:
    def test_walk_latency_depends_on_page_size(self):
        assert PageTable(PAGE_4K).walk_latency > PageTable(PAGE_2M).walk_latency

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PageTable(page_size=1234)

    def test_translate_faults_once_per_page(self):
        table = PageTable(PAGE_4K)
        _pa, fault1 = table.translate(0x1000)
        _pa, fault2 = table.translate(0x1008)
        assert fault1 and not fault2
        assert table.minor_faults == 1

    def test_translation_preserves_page_offset(self):
        table = PageTable(PAGE_4K)
        pa, _ = table.translate(0x1234)
        assert pa % PAGE_4K == 0x234

    def test_map_range_prevents_faults(self):
        table = PageTable(PAGE_4K)
        table.map_range(0x10000, 3 * PAGE_4K)
        for offset in range(0, 3 * PAGE_4K, PAGE_4K):
            _pa, fault = table.translate(0x10000 + offset)
            assert not fault

    def test_pages_spanned(self):
        table = PageTable(PAGE_4K)
        assert table.pages_spanned(0, 1) == 1
        assert table.pages_spanned(0, PAGE_4K) == 1
        assert table.pages_spanned(0, PAGE_4K + 1) == 2
        assert table.pages_spanned(PAGE_4K - 1, 2) == 2
        assert table.pages_spanned(0, 0) == 0

    def test_huge_pages_span_fewer_pages(self):
        small = PageTable(PAGE_4K)
        huge = PageTable(PAGE_2M)
        size = 8 * 1024 * 1024
        assert huge.pages_spanned(0, size) < small.pages_spanned(0, size)

    @given(st.integers(0, 2**40), st.integers(1, 2**24))
    def test_pages_spanned_covers_range(self, va, size):
        table = PageTable(PAGE_4K)
        pages = table.pages_spanned(va, size)
        assert pages * PAGE_4K >= size
        assert (pages - 1) * PAGE_4K < size + (va % PAGE_4K) + PAGE_4K

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            PageTable().translate(-1)


class TestTlb:
    def test_miss_then_fill_then_hit(self):
        tlb = Tlb(entries=4, page_size=PAGE_4K)
        assert not tlb.lookup(0x1000)
        tlb.fill(0x1000)
        assert tlb.lookup(0x1000)
        assert tlb.hits == 1 and tlb.misses == 1

    def test_lru_eviction(self):
        tlb = Tlb(entries=2, page_size=PAGE_4K)
        tlb.fill(0 * PAGE_4K)
        tlb.fill(1 * PAGE_4K)
        tlb.lookup(0 * PAGE_4K)  # refresh page 0
        tlb.fill(2 * PAGE_4K)  # evicts page 1 (LRU)
        assert tlb.lookup(0 * PAGE_4K)
        assert not tlb.lookup(1 * PAGE_4K)

    def test_capacity_bound(self):
        tlb = Tlb(entries=3, page_size=PAGE_4K)
        for i in range(10):
            tlb.fill(i * PAGE_4K)
        assert len(tlb) == 3

    def test_invalidate_all(self):
        tlb = Tlb(entries=4, page_size=PAGE_4K)
        tlb.fill(0)
        tlb.invalidate_all()
        assert not tlb.lookup(0)

    def test_hit_rate(self):
        tlb = Tlb(entries=4, page_size=PAGE_4K)
        assert tlb.hit_rate == 0.0
        tlb.fill(0)
        tlb.lookup(0)
        tlb.lookup(PAGE_4K)
        assert tlb.hit_rate == pytest.approx(0.5)


class TestIommu:
    def _attached(self, page_size=PAGE_4K):
        iommu = Iommu(IommuParams())
        table = PageTable(page_size)
        iommu.attach(pasid=7, table=table)
        return iommu, table

    def test_translate_requires_attached_pasid(self):
        iommu = Iommu()
        with pytest.raises(KeyError):
            iommu.translate(99, 0x1000)

    def test_double_attach_rejected(self):
        iommu, table = self._attached()
        with pytest.raises(ValueError):
            iommu.attach(7, table)

    def test_fault_cost_dominates_unmapped_page(self):
        iommu, table = self._attached()
        latency, faulted = iommu.translate(7, 0x5000)
        assert faulted
        assert latency >= iommu.params.page_fault_latency

    def test_prefaulted_page_avoids_fault(self):
        iommu, table = self._attached()
        table.map_range(0x5000, PAGE_4K)
        latency, faulted = iommu.translate(7, 0x5000)
        assert not faulted
        assert latency < iommu.params.page_fault_latency

    def test_iotlb_hit_is_cheapest(self):
        iommu, table = self._attached()
        table.map_range(0x5000, PAGE_4K)
        first, _ = iommu.translate(7, 0x5000)
        second, _ = iommu.translate(7, 0x5000)
        assert second == iommu.params.iotlb_hit_latency
        assert second < first

    def test_range_translation_counts_faults(self):
        iommu, table = self._attached()
        first, pipelined, faults = iommu.range_translation_cost(7, 0, 4 * PAGE_4K)
        assert faults == 4
        assert first > 0 and pipelined > 0

    def test_range_translation_huge_pages_fewer_translations(self):
        iommu4k, t4k = self._attached()
        iommu2m = Iommu()
        iommu2m.attach(7, PageTable(PAGE_2M))
        size = 8 * 1024 * 1024
        t4k.map_range(0, size)
        _f4, pipelined_4k, _ = iommu4k.range_translation_cost(7, 0, size)
        iommu2m._tables[7].map_range(0, size)
        _f2, pipelined_2m, _ = iommu2m.range_translation_cost(7, 0, size)
        assert pipelined_2m < pipelined_4k

    def test_detach_then_translate_fails(self):
        iommu, _table = self._attached()
        iommu.detach(7)
        with pytest.raises(KeyError):
            iommu.translate(7, 0)

    def test_zero_size_range(self):
        iommu, _ = self._attached()
        assert iommu.range_translation_cost(7, 0, 0) == (0.0, 0.0, 0)
