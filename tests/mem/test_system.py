"""Unit tests for the composed MemorySystem, NUMA and CXL tiers."""

import pytest

from repro.mem import AddressSpace, Buffer, MemorySystem
from repro.mem.numa import NumaTopology, UpiParams
from repro.mem.system import SAME_NODE_TURNAROUND_NS, TierKind
from repro.sim import Environment


class TestNumaTopology:
    def test_socket_bounds(self):
        topo = NumaTopology(sockets=2)
        with pytest.raises(ValueError):
            topo.place_node(0, socket=2)

    def test_unplaced_node_raises(self):
        topo = NumaTopology()
        with pytest.raises(KeyError):
            topo.socket_of(5)

    def test_remote_detection(self):
        topo = NumaTopology(sockets=2)
        topo.place_node(0, 0)
        topo.place_node(1, 1)
        assert not topo.is_remote(0, 0)
        assert topo.is_remote(0, 1)

    def test_crossing_cost(self):
        topo = NumaTopology(sockets=2, upi=UpiParams(hop_latency=50.0))
        topo.place_node(1, 1)
        cost, remote = topo.crossing_cost(0, 1)
        assert remote and cost == 50.0


class TestMemorySystemConstruction:
    def test_spr_preset_has_two_dram_nodes(self):
        env = Environment()
        system = MemorySystem.spr(env)
        assert set(system.nodes) == {0, 1}
        assert all(n.kind is TierKind.DRAM for n in system.nodes.values())

    def test_spr_with_cxl_adds_node(self):
        env = Environment()
        system = MemorySystem.spr(env, with_cxl=True)
        assert system.node(2).kind is TierKind.CXL

    def test_icx_llc_smaller_than_spr(self):
        env = Environment()
        assert MemorySystem.icx(env).llc.size < MemorySystem.spr(env).llc.size

    def test_duplicate_node_rejected(self):
        env = Environment()
        system = MemorySystem.spr(env)
        from repro.mem.dram import DDR5_8CH

        with pytest.raises(ValueError):
            system.add_dram_node(0, socket=0, params=DDR5_8CH)

    def test_unknown_node_raises(self):
        env = Environment()
        system = MemorySystem.spr(env)
        with pytest.raises(KeyError):
            system.node(42)


class TestLatencies:
    def test_remote_read_adds_upi_hop(self):
        env = Environment()
        system = MemorySystem.spr(env)
        local = system.read_latency(0, from_socket=0)
        remote = system.read_latency(1, from_socket=0)
        assert remote == pytest.approx(local + system.topology.upi.hop_latency)

    def test_llc_read_is_fastest(self):
        env = Environment()
        system = MemorySystem.spr(env)
        assert system.read_latency(0, 0, in_llc=True) < system.read_latency(0, 0)

    def test_cxl_write_latency_exceeds_read(self):
        env = Environment()
        system = MemorySystem.spr(env, with_cxl=True)
        assert system.write_latency(2, 0) > system.read_latency(2, 0)

    def test_cxl_latency_exceeds_dram(self):
        env = Environment()
        system = MemorySystem.spr(env, with_cxl=True)
        assert system.read_latency(2, 0) > system.read_latency(0, 0)

    def test_same_node_turnaround_penalty(self):
        env = Environment()
        system = MemorySystem.spr(env)
        plain = system.write_latency(0, 0)
        loaded = system.write_latency(0, 0, same_node_as_read=True)
        assert loaded == pytest.approx(plain + SAME_NODE_TURNAROUND_NS)

    def test_ddio_write_goes_to_llc(self):
        env = Environment()
        system = MemorySystem.spr(env)
        assert system.write_latency(0, 0, to_llc=True) == system.llc.write_latency


class TestFlows:
    def test_local_read_flow_completes(self):
        env = Environment()
        system = MemorySystem.spr(env)
        done = []

        def proc(env):
            yield system.read_flow(0, 1000.0, from_socket=0)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done and done[0] > 0

    def test_remote_flow_limited_by_upi(self):
        env = Environment()
        system = MemorySystem.spr(env)
        done = {}

        def proc(env, label, node):
            yield system.read_flow(node, 100_000.0, from_socket=0)
            done[label] = env.now

        # Three concurrent streams per side: the UPI link (62 GB/s)
        # paces the remote ones below the per-stream DRAM ceiling.
        for index in range(3):
            env.process(proc(env, f"local{index}", 0))
            env.process(proc(env, f"remote{index}", 1))
        env.run()
        assert done["remote0"] > done["local0"]

    def test_single_stream_capped_below_node_bandwidth(self):
        env = Environment()
        system = MemorySystem.spr(env)
        node = system.node(0)
        assert node.read_link.per_flow_cap is not None
        assert node.read_link.per_flow_cap < node.read_link.bandwidth
        assert node.read_link.instantaneous_rate() == node.read_link.per_flow_cap

    def test_cxl_write_flow_slower_than_read_flow(self):
        env = Environment()
        system = MemorySystem.spr(env, with_cxl=True)
        done = {}

        def run_flow(env, label, flow):
            yield flow
            done[label] = env.now

        env.process(run_flow(env, "read", system.read_flow(2, 1e6, from_socket=0)))
        env.run()
        t_read = done["read"]
        env2 = Environment()
        system2 = MemorySystem.spr(env2, with_cxl=True)
        env2.process(run_flow(env2, "write", system2.write_flow(2, 1e6, from_socket=0)))
        env2.run()
        assert done["write"] > t_read


class TestAddressSpace:
    def test_allocate_returns_disjoint_buffers(self):
        space = AddressSpace()
        a = space.allocate(4096)
        b = space.allocate(4096)
        assert a.va + a.size <= b.va

    def test_alignment(self):
        space = AddressSpace()
        buf = space.allocate(100, align=4096)
        assert buf.va % 4096 == 0

    def test_bad_alignment_rejected(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.allocate(100, align=100)

    def test_prefault_populates_pagetable(self):
        space = AddressSpace()
        buf = space.allocate(3 * 4096, prefault=True)
        assert space.page_table.is_mapped(buf.va)
        assert space.page_table.is_mapped(buf.va + buf.size - 1)

    def test_no_prefault_leaves_pages_unmapped(self):
        space = AddressSpace()
        buf = space.allocate(4096, prefault=False)
        assert not space.page_table.is_mapped(buf.va)

    def test_buffer_at_interior_address(self):
        space = AddressSpace()
        buf = space.allocate(4096)
        assert space.buffer_at(buf.va + 100) is buf

    def test_buffer_at_unknown_address_raises(self):
        space = AddressSpace()
        with pytest.raises(KeyError):
            space.buffer_at(0xDEAD0000)

    def test_unbacked_buffer_rejects_data_access(self):
        buf = Buffer(va=0x1000, size=64, node=0, pasid=1, backed=False)
        with pytest.raises(RuntimeError):
            _ = buf.data

    def test_backed_buffer_view_bounds(self):
        buf = Buffer(va=0x1000, size=64, node=0, pasid=1, backed=True)
        assert len(buf.view(0, 64)) == 64
        with pytest.raises(ValueError):
            buf.view(60, 10)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Buffer(va=0, size=0, node=0, pasid=1)
