"""Unit tests for the fair-share bandwidth link model."""

import importlib.util
import math
import random
import sys
from pathlib import Path

import pytest

from repro.mem.link import FairShareLink, SerialLink
from repro.sim import Environment


def _load_legacy_link():
    """Import the verbatim pre-virtual-time link embedded in the bench."""
    path = Path(__file__).resolve().parents[2] / "scripts" / "bench_link.py"
    spec = importlib.util.spec_from_file_location("bench_link", path)
    module = importlib.util.module_from_spec(spec)
    # The bench imports its shared harness (scripts/_bench_common.py)
    # as a sibling module, so scripts/ must be importable while it loads.
    sys.path.insert(0, str(path.parent))
    try:
        spec.loader.exec_module(module)
    finally:
        sys.path.remove(str(path.parent))
    return module.LegacyFairShareLink


LegacyFairShareLink = _load_legacy_link()


class TestFairShareLink:
    def test_single_flow_runs_at_full_bandwidth(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0)  # 10 B/ns
        done = []

        def proc(env):
            yield link.transfer(1000.0)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [pytest.approx(100.0)]

    def test_two_equal_flows_share_evenly(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0)
        done = []

        def proc(env, tag):
            yield link.transfer(1000.0)
            done.append((tag, env.now))

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        # Both flows at 5 B/ns -> 200 ns each.
        assert done[0][1] == pytest.approx(200.0)
        assert done[1][1] == pytest.approx(200.0)

    def test_late_joiner_slows_first_flow(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0)
        done = {}

        def first(env):
            yield link.transfer(1000.0)
            done["first"] = env.now

        def second(env):
            yield env.timeout(50.0)
            yield link.transfer(250.0)
            done["second"] = env.now

        env.process(first(env))
        env.process(second(env))
        env.run()
        # First: 500 B in 50ns solo, then 5 B/ns shared.
        # Second finishes 250 B at 5 B/ns in 50 ns (at t=100).
        assert done["second"] == pytest.approx(100.0)
        # First then has 250 B left at 10 B/ns -> t = 125.
        assert done["first"] == pytest.approx(125.0)

    def test_zero_byte_transfer_is_instant(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=1.0)
        ev = link.transfer(0.0)
        assert ev.triggered

    def test_negative_transfer_rejected(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=1.0)
        with pytest.raises(ValueError):
            link.transfer(-1.0)

    def test_invalid_bandwidth_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            FairShareLink(env, bandwidth=0.0)

    def test_bytes_completed_accumulates(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0)
        link.transfer(100.0)
        link.transfer(200.0)
        env.run()
        assert link.bytes_completed == pytest.approx(300.0)

    def test_many_flows_aggregate_to_bandwidth(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=8.0)
        done = []

        def proc(env):
            yield link.transfer(800.0)
            done.append(env.now)

        for _ in range(8):
            env.process(proc(env))
        env.run()
        # 8 flows x 800 B = 6400 B at 8 B/ns -> all complete at 800 ns.
        assert all(t == pytest.approx(800.0) for t in done)

    def test_instantaneous_rate(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=12.0)
        assert link.instantaneous_rate() == 12.0
        link.transfer(1e9)
        link.transfer(1e9)
        assert link.instantaneous_rate() == 6.0


class TestWeightedFairShare:
    def test_two_to_one_weight_ratio(self):
        # B=9, 900 B each at weights 2:1 -> rates 6 and 3; the heavy flow
        # finishes at 150, then the light one drains its 450 B at 9 B/ns.
        env = Environment()
        link = FairShareLink(env, bandwidth=9.0)
        done = {}

        def proc(tag, weight):
            yield link.transfer(900.0, weight=weight)
            done[tag] = env.now

        env.process(proc("heavy", 2.0))
        env.process(proc("light", 1.0))
        env.run()
        assert done["heavy"] == pytest.approx(150.0)
        assert done["light"] == pytest.approx(200.0)

    def test_drain_order_follows_virtual_finish_tags(self):
        # Equal sizes, weights 1/2/3: finish tags 600/300/200, so the
        # heaviest flow completes first despite identical join times.
        env = Environment()
        link = FairShareLink(env, bandwidth=6.0)
        order = []
        done = {}

        def proc(tag, weight):
            yield link.transfer(600.0, weight=weight)
            order.append(tag)
            done[tag] = env.now

        for tag, weight in (("w1", 1.0), ("w2", 2.0), ("w3", 3.0)):
            env.process(proc(tag, weight))
        env.run()
        assert order == ["w3", "w2", "w1"]
        assert done["w3"] == pytest.approx(200.0)
        assert done["w2"] == pytest.approx(250.0)
        assert done["w1"] == pytest.approx(300.0)

    def test_uniform_weight_cap_interaction(self):
        # Uniform weights under a cap stay on the virtual-time fast
        # path: both flows pinned at 4 B/ns, and the survivor stays
        # capped even once it is alone on the link.
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0, per_flow_cap=4.0)
        done = {}

        def proc(tag, nbytes):
            yield link.transfer(nbytes)
            done[tag] = env.now

        env.process(proc("short", 400.0))
        env.process(proc("long", 800.0))
        env.run()
        assert done["short"] == pytest.approx(100.0)
        assert done["long"] == pytest.approx(200.0)
        assert link._wf_flows is None  # never left the fast path


class TestWaterFilling:
    def test_cap_surplus_redistributed_to_light_flow(self):
        # B=10, cap=6, weights 3:1.  Proportional shares would be
        # 7.5/2.5; the heavy flow is clamped to 6 and the light flow
        # water-fills to 4 (not 2.5 as the old proportional-min gave).
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0, per_flow_cap=6.0)
        done = {}

        def proc(tag, weight):
            yield link.transfer(600.0, weight=weight)
            done[tag] = env.now

        env.process(proc("heavy", 3.0))
        env.process(proc("light", 1.0))
        env.run()
        assert done["heavy"] == pytest.approx(100.0)
        # 400 B at 4 B/ns while sharing, then 200 B alone at min(10, 6).
        assert done["light"] == pytest.approx(100.0 + 200.0 / 6.0)

    def test_redistribution_cascades(self):
        # B=12, cap=4.5, weights 4/2/1: the first redistribution round
        # pushes the middle flow over the cap too, so water-filling must
        # iterate.  Final rates 4.5 / 4.5 / 3.0.
        env = Environment()
        link = FairShareLink(env, bandwidth=12.0, per_flow_cap=4.5)
        done = {}

        def proc(tag, nbytes, weight):
            yield link.transfer(nbytes, weight=weight)
            done[tag] = env.now

        env.process(proc("w4", 900.0, 4.0))
        env.process(proc("w2", 450.0, 2.0))
        env.process(proc("w1", 150.0, 1.0))
        env.run()
        assert done["w1"] == pytest.approx(50.0)
        assert done["w2"] == pytest.approx(100.0)
        assert done["w4"] == pytest.approx(200.0)

    def test_returns_to_virtual_time_after_drain(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0, per_flow_cap=6.0)

        def phase_one(weight):
            yield link.transfer(300.0, weight=weight)

        env.process(phase_one(3.0))
        env.process(phase_one(1.0))
        env.run()
        assert link._wf_flows is None  # drained idle -> fast path again
        done = []

        def phase_two():
            yield link.transfer(500.0)
            done.append(env.now)

        start = env.now
        env.process(phase_two())
        env.run()
        assert link._wf_flows is None
        assert done == [pytest.approx(start + 500.0 / 6.0)]


class TestBytesAccounting:
    def test_bytes_completed_counted_at_drain_not_submit(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0)
        link.transfer(100.0)
        link.transfer(200.0)
        # Nothing has drained yet: the old implementation wrongly
        # reported 300 completed here.
        assert link.bytes_completed == 0.0
        assert link.bytes_inflight == pytest.approx(300.0)
        env.run(until=10.0)
        # 10 ns at 5 B/ns each -> 100 B drained, none complete.
        assert link.bytes_completed == 0.0
        assert link.bytes_inflight == pytest.approx(200.0)
        env.run()
        assert link.bytes_completed == pytest.approx(300.0)
        assert link.bytes_inflight == 0.0

    def test_bytes_inflight_is_a_pure_read(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0)
        event = link.transfer(100.0)
        env.run(until=5.0)
        # Sampling mid-flight advances nothing: repeated reads agree,
        # the flow is still active, and it completes on time anyway.
        assert link.bytes_inflight == pytest.approx(50.0)
        assert link.bytes_inflight == pytest.approx(50.0)
        assert not event.triggered
        assert link.active_flows == 1
        env.run()
        assert event.triggered
        assert env.now == pytest.approx(10.0)

    def test_bytes_accounting_in_waterfill_mode(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0, per_flow_cap=6.0)
        link.transfer(600.0, weight=3.0)
        link.transfer(600.0, weight=1.0)
        assert link.bytes_inflight == pytest.approx(1200.0)
        env.run(until=50.0)
        # Rates 6 and 4 -> 500 B drained after 50 ns.
        assert link.bytes_inflight == pytest.approx(700.0)
        assert link.bytes_completed == 0.0
        env.run()
        assert link.bytes_completed == pytest.approx(1200.0)


class TestDifferentialOldVsNew:
    """Randomized old-vs-new equivalence (the tentpole's safety net).

    The legacy O(n) link (verbatim from ``scripts/bench_link.py``) and
    the virtual-time link must produce *identical* completion times on
    every schedule where their semantics coincide: mixed weights without
    a cap, any weights with a non-binding cap, and uniform weights with
    a binding cap.  (Mixed weights under a *binding* cap intentionally
    differ — water-filling vs proportional-min — and are pinned by
    ``TestWaterFilling`` instead.)
    """

    SCHEDULES_PER_SCENARIO = 70

    @staticmethod
    def _random_schedule(rng, uniform_weight):
        n_flows = rng.randint(2, 10)
        weight = rng.choice([0.5, 1.0, 2.0, 4.0]) if uniform_weight else None
        schedule = []
        for _ in range(n_flows):
            schedule.append(
                (
                    rng.uniform(0.0, 50.0),  # arrival delay
                    rng.uniform(64.0, 8192.0),  # bytes
                    weight if uniform_weight else rng.choice([0.5, 1.0, 2.0, 4.0]),
                )
            )
        return schedule

    @staticmethod
    def _completion_times(link_cls, schedule, bandwidth, cap):
        env = Environment()
        link = link_cls(env, bandwidth=bandwidth, per_flow_cap=cap)
        finish = {}

        def proc(idx, delay, nbytes, weight):
            yield env.timeout(delay)
            yield link.transfer(nbytes, weight=weight)
            finish[idx] = env.now

        for idx, (delay, nbytes, weight) in enumerate(schedule):
            env.process(proc(idx, delay, nbytes, weight))
        env.run()
        return [finish[idx] for idx in range(len(schedule))]

    @pytest.mark.parametrize(
        "scenario,uniform_weight,cap_kind",
        [
            ("mixed_weights_uncapped", False, None),
            ("uniform_weights_binding_cap", True, "binding"),
            ("mixed_weights_nonbinding_cap", False, "nonbinding"),
        ],
    )
    def test_completion_times_match_legacy(self, scenario, uniform_weight, cap_kind):
        rng = random.Random(hash(scenario) & 0xFFFFFFFF)
        for trial in range(self.SCHEDULES_PER_SCENARIO):
            bandwidth = rng.uniform(4.0, 128.0)
            if cap_kind == "binding":
                cap = rng.uniform(bandwidth / 8.0, bandwidth / 1.5)
            elif cap_kind == "nonbinding":
                cap = bandwidth * rng.uniform(1.0, 4.0)
            else:
                cap = None
            schedule = self._random_schedule(rng, uniform_weight)
            old = self._completion_times(LegacyFairShareLink, schedule, bandwidth, cap)
            new = self._completion_times(FairShareLink, schedule, bandwidth, cap)
            for idx, (t_old, t_new) in enumerate(zip(old, new)):
                assert math.isclose(t_old, t_new, rel_tol=1e-9, abs_tol=1e-9), (
                    f"{scenario} trial {trial} flow {idx}: "
                    f"legacy {t_old!r} != virtual-time {t_new!r} "
                    f"(bandwidth={bandwidth}, cap={cap}, schedule={schedule})"
                )


class TestSerialLink:
    def test_transfers_queue_back_to_back(self):
        env = Environment()
        link = SerialLink(env, bandwidth=2.0)
        times = []

        def proc(env):
            yield link.transfer(100.0)
            times.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert times == [pytest.approx(50.0), pytest.approx(100.0)]

    def test_idle_gap_not_credited(self):
        env = Environment()
        link = SerialLink(env, bandwidth=1.0)
        times = []

        def proc(env):
            yield env.timeout(100.0)
            yield link.transfer(10.0)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [pytest.approx(110.0)]

    def test_cancelled_transfer_keeps_time_reservation(self):
        # A posted request still occupies the channel even if the
        # submitter loses interest: cancel suppresses the callbacks but
        # the serialization slot stays booked.
        env = Environment()
        link = SerialLink(env, bandwidth=2.0)
        fired = []
        first = link.transfer(100.0)  # occupies [0, 50)
        first.callbacks.append(lambda ev: fired.append(env.now))
        assert first.cancel() is True
        times = []

        def proc(env):
            yield link.transfer(100.0)  # queued behind the cancelled one
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert fired == []
        assert times == [pytest.approx(100.0)]
