"""Unit tests for the fair-share bandwidth link model."""

import pytest

from repro.mem.link import FairShareLink, SerialLink
from repro.sim import Environment


class TestFairShareLink:
    def test_single_flow_runs_at_full_bandwidth(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0)  # 10 B/ns
        done = []

        def proc(env):
            yield link.transfer(1000.0)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [pytest.approx(100.0)]

    def test_two_equal_flows_share_evenly(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0)
        done = []

        def proc(env, tag):
            yield link.transfer(1000.0)
            done.append((tag, env.now))

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        # Both flows at 5 B/ns -> 200 ns each.
        assert done[0][1] == pytest.approx(200.0)
        assert done[1][1] == pytest.approx(200.0)

    def test_late_joiner_slows_first_flow(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0)
        done = {}

        def first(env):
            yield link.transfer(1000.0)
            done["first"] = env.now

        def second(env):
            yield env.timeout(50.0)
            yield link.transfer(250.0)
            done["second"] = env.now

        env.process(first(env))
        env.process(second(env))
        env.run()
        # First: 500 B in 50ns solo, then 5 B/ns shared.
        # Second finishes 250 B at 5 B/ns in 50 ns (at t=100).
        assert done["second"] == pytest.approx(100.0)
        # First then has 250 B left at 10 B/ns -> t = 125.
        assert done["first"] == pytest.approx(125.0)

    def test_zero_byte_transfer_is_instant(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=1.0)
        ev = link.transfer(0.0)
        assert ev.triggered

    def test_negative_transfer_rejected(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=1.0)
        with pytest.raises(ValueError):
            link.transfer(-1.0)

    def test_invalid_bandwidth_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            FairShareLink(env, bandwidth=0.0)

    def test_bytes_completed_accumulates(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0)
        link.transfer(100.0)
        link.transfer(200.0)
        env.run()
        assert link.bytes_completed == pytest.approx(300.0)

    def test_many_flows_aggregate_to_bandwidth(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=8.0)
        done = []

        def proc(env):
            yield link.transfer(800.0)
            done.append(env.now)

        for _ in range(8):
            env.process(proc(env))
        env.run()
        # 8 flows x 800 B = 6400 B at 8 B/ns -> all complete at 800 ns.
        assert all(t == pytest.approx(800.0) for t in done)

    def test_instantaneous_rate(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=12.0)
        assert link.instantaneous_rate() == 12.0
        link.transfer(1e9)
        link.transfer(1e9)
        assert link.instantaneous_rate() == 6.0


class TestSerialLink:
    def test_transfers_queue_back_to_back(self):
        env = Environment()
        link = SerialLink(env, bandwidth=2.0)
        times = []

        def proc(env):
            yield link.transfer(100.0)
            times.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert times == [pytest.approx(50.0), pytest.approx(100.0)]

    def test_idle_gap_not_credited(self):
        env = Environment()
        link = SerialLink(env, bandwidth=1.0)
        times = []

        def proc(env):
            yield env.timeout(100.0)
            yield link.transfer(10.0)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [pytest.approx(110.0)]
