"""Tests for the persistent-memory tier and raw-image submission."""

import pytest

from repro.mem.pmem import OPTANE_BANK, PmemParams
from repro.mem.system import MemorySystem, TierKind
from repro.platform import spr_platform
from repro.sim import Environment
from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

KB = 1024


def platform_with_pmem():
    platform = spr_platform()
    platform.memsys.add_pmem_node(3, socket=0, params=OPTANE_BANK)
    return platform


class TestPmemParams:
    def test_defaults_valid(self):
        OPTANE_BANK.validate()

    def test_write_cliff_required(self):
        with pytest.raises(ValueError, match="cliff"):
            PmemParams(read_bandwidth=8.0, write_bandwidth=10.0).validate()

    def test_wrong_params_type_rejected(self):
        env = Environment()
        system = MemorySystem.spr(env)
        from repro.mem.dram import DDR5_8CH

        with pytest.raises(TypeError, match="PmemParams"):
            system.add_pmem_node(3, socket=0, params=DDR5_8CH)


class TestPmemTier:
    def test_node_kind(self):
        platform = platform_with_pmem()
        assert platform.memsys.node(3).kind is TierKind.PMEM

    def test_read_latency_above_dram(self):
        platform = platform_with_pmem()
        assert platform.memsys.read_latency(3, 0) > platform.memsys.read_latency(0, 0)

    def test_write_cliff_shapes_dma_throughput(self):
        """G4 on PMEM: reads from PMEM far outrun writes to it."""
        promote = run_dsa_microbench(
            MicrobenchConfig(
                transfer_size=256 * KB, queue_depth=16, iterations=40, src_node=3
            ),
            platform=platform_with_pmem(),
        ).throughput
        demote = run_dsa_microbench(
            MicrobenchConfig(
                transfer_size=256 * KB, queue_depth=16, iterations=40, dst_node=3
            ),
            platform=platform_with_pmem(),
        ).throughput
        assert promote > 2 * demote
        assert demote == pytest.approx(OPTANE_BANK.write_bandwidth, rel=0.15)

    def test_dram_copy_unaffected_by_pmem_presence(self):
        base = run_dsa_microbench(
            MicrobenchConfig(transfer_size=64 * KB, queue_depth=16, iterations=40)
        ).throughput
        with_pmem = run_dsa_microbench(
            MicrobenchConfig(transfer_size=64 * KB, queue_depth=16, iterations=40),
            platform=platform_with_pmem(),
        ).throughput
        assert with_pmem == pytest.approx(base, rel=0.02)


class TestRawSubmission:
    def test_wire_image_round_trip_through_device(self):
        import numpy as np

        from repro.dsa.descriptor import WorkDescriptor
        from repro.dsa.errors import StatusCode
        from repro.dsa.opcodes import Opcode
        from repro.dsa.wire import pack_descriptor
        from repro.mem.address import AddressSpace
        from repro.sim import make_rng

        platform = spr_platform()
        device = platform.driver.device("dsa0")
        space = AddressSpace()
        device.attach_space(space)
        src = space.allocate(4 * KB, backed=True)
        dst = space.allocate(4 * KB, backed=True)
        src.fill_random(make_rng(9))
        image = pack_descriptor(
            WorkDescriptor(
                Opcode.MEMMOVE, pasid=space.pasid, src=src.va, dst=dst.va, size=4 * KB
            )
        )
        decoded = device.submit_raw(image)
        platform.env.run()
        assert decoded.completion.status == StatusCode.SUCCESS
        assert np.array_equal(dst.data, src.data)
