"""Edge-case batch: descriptor lifecycle, DML waits, xmem inputs."""

import pytest

from repro.dsa.descriptor import CompletionRecord, Timestamps, WorkDescriptor
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import Opcode
from repro.mem import AddressSpace
from repro.platform import spr_platform
from repro.runtime.dml import Dml, DmlJob

KB = 1024
MB = 1024 * KB


class TestDescriptorLifecycle:
    def test_completion_record_done_semantics(self):
        record = CompletionRecord()
        assert not record.done
        record.status = StatusCode.SUCCESS
        assert record.done

    def test_wait_time_requires_full_lifecycle(self):
        times = Timestamps()
        with pytest.raises(ValueError, match="incomplete"):
            times.wait_time()
        times.submitted = 10.0
        times.completed = 25.0
        assert times.wait_time() == 15.0

    def test_cache_control_property(self):
        from repro.dsa.opcodes import DescriptorFlags

        descriptor = WorkDescriptor(Opcode.MEMMOVE, size=64)
        assert not descriptor.cache_control
        descriptor.flags |= DescriptorFlags.CACHE_CONTROL
        assert descriptor.cache_control

    def test_invalid_opcode_type(self):
        descriptor = WorkDescriptor.__new__(WorkDescriptor)
        descriptor.opcode = "not-an-opcode"
        descriptor.size = 64
        assert descriptor.validate() == StatusCode.INVALID_OPCODE


class TestDmlEdges:
    def test_wait_on_software_job_is_immediate(self):
        platform = spr_platform()
        space = AddressSpace()
        dml = Dml(platform.env, [platform.open_portal("dsa0", 0, space)], space=space)
        core = platform.core(0)
        src = space.allocate(KB)
        dst = space.allocate(KB)
        descriptor = dml.make_descriptor(Opcode.MEMMOVE, KB, src=src, dst=dst)
        out = {}

        def proc(env):
            status = yield from dml.run_software(core, descriptor)
            job = DmlJob(descriptor, portal=None, software=True)
            out["status"] = yield from dml.wait(core, job)
            out["first"] = status

        platform.env.process(proc(platform.env))
        platform.env.run()
        assert out["status"] == out["first"] == StatusCode.SUCCESS

    def test_negative_threshold_rejected(self):
        platform = spr_platform()
        with pytest.raises(ValueError):
            Dml(platform.env, [], auto_threshold=-1)

    def test_job_done_tracks_completion(self):
        platform = spr_platform()
        space = AddressSpace()
        dml = Dml(platform.env, [platform.open_portal("dsa0", 0, space)], space=space)
        core = platform.core(0)
        src = space.allocate(64 * KB)
        dst = space.allocate(64 * KB)
        descriptor = dml.make_descriptor(Opcode.MEMMOVE, 64 * KB, src=src, dst=dst)
        states = {}

        def proc(env):
            job = yield from dml.submit_async(core, descriptor)
            states["after_submit"] = job.done
            yield from dml.wait(core, job)
            states["after_wait"] = job.done

        platform.env.process(proc(platform.env))
        platform.env.run()
        assert states == {"after_submit": False, "after_wait": True}


class TestXmemEdges:
    def test_fig13_sweep_latencies_positive(self):
        from repro.workloads.xmem import run_fig13_sweep

        curves = run_fig13_sweep([2 * MB], duration_s=0.3)
        for points in curves.values():
            assert all(latency > 0 for _wss, latency in points)

    def test_custom_corun_params_respected(self):
        from repro.workloads.xmem import CoRunKind, CoRunParams, run_xmem_scenario

        gentle = CoRunParams(
            kind=CoRunKind.SOFTWARE, streams=1, stream_bandwidth=2.0
        )
        harsh = CoRunParams(
            kind=CoRunKind.SOFTWARE, streams=8, stream_bandwidth=12.0
        )
        lat_gentle = run_xmem_scenario(
            CoRunKind.SOFTWARE, working_set=4 * MB, duration_s=1.0, corun=gentle
        ).mean_latency_ns
        lat_harsh = run_xmem_scenario(
            CoRunKind.SOFTWARE, working_set=4 * MB, duration_s=1.0, corun=harsh
        ).mean_latency_ns
        assert lat_harsh > lat_gentle


class TestGuidelinesCli:
    def test_cli_list_and_advise(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "guidelines" in out
        assert main(["advise", "65536"]) == 0
        out = capsys.readouterr().out
        assert "OFFLOAD" in out

    def test_cli_advise_small_stays_on_cpu(self, capsys):
        from repro.__main__ import main

        assert main(["advise", "64", "--sync-only"]) == 0
        assert "keep on the CPU" in capsys.readouterr().out
