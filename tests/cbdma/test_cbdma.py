"""Unit tests for the CBDMA baseline device."""

import pytest

from repro.cbdma.device import (
    CbdmaChannelBusyError,
    CbdmaDevice,
    CbdmaRequest,
    CbdmaTimingParams,
    PinningError,
)
from repro.mem import AddressSpace, MemorySystem
from repro.sim import Environment

KB = 1024


def make_device(**kwargs):
    env = Environment()
    memsys = MemorySystem.icx(env)
    device = CbdmaDevice(env, memsys, **kwargs)
    space = AddressSpace()
    return env, device, space


def pinned_request(device, space, size=4 * KB):
    src = space.allocate(size)
    dst = space.allocate(size)
    device.pin(src)
    device.pin(dst)
    return CbdmaRequest(src=src, dst=dst, size=size)


class TestConstruction:
    def test_default_channels(self):
        _env, device, _space = make_device()
        assert device.n_channels == 16

    def test_zero_channels_rejected(self):
        with pytest.raises(ValueError):
            make_device(n_channels=0)

    def test_timing_validation(self):
        import dataclasses

        bad = dataclasses.replace(CbdmaTimingParams(), channel_bandwidth=0.0)
        with pytest.raises(ValueError):
            bad.validate()


class TestPinning:
    def test_unpinned_buffer_rejected(self):
        _env, device, space = make_device()
        src = space.allocate(4 * KB)
        dst = space.allocate(4 * KB)
        device.pin(src)  # destination left unpinned
        with pytest.raises(PinningError, match="not pinned"):
            device.submit(CbdmaRequest(src=src, dst=dst, size=4 * KB))

    def test_unpin_revokes_access(self):
        _env, device, space = make_device()
        request = pinned_request(device, space)
        device.unpin(request.src)
        with pytest.raises(PinningError):
            device.submit(request)

    def test_is_pinned(self):
        _env, device, space = make_device()
        buf = space.allocate(KB)
        assert not device.is_pinned(buf)
        device.pin(buf)
        assert device.is_pinned(buf)


class TestTransfers:
    def test_copy_completes(self):
        env, device, space = make_device()
        request = pinned_request(device, space)
        event = device.submit(request)
        env.run()
        assert event.triggered
        assert request.done
        assert device.requests_completed == 1
        assert device.bytes_copied == 4 * KB

    def test_latency_includes_setup_and_read(self):
        env, device, space = make_device()
        request = pinned_request(device, space)
        device.submit(request)
        env.run()
        elapsed = request.times.completed - request.times.submitted
        timing = device.timing
        floor = timing.channel_setup_ns + device.memsys.node(0).read_latency
        assert elapsed > floor

    def test_bad_channel_rejected(self):
        _env, device, space = make_device(n_channels=2)
        request = pinned_request(device, space)
        with pytest.raises(ValueError, match="channel"):
            device.submit(request, channel_id=5)

    def test_zero_size_rejected(self):
        _env, device, space = make_device()
        src = space.allocate(KB)
        dst = space.allocate(KB)
        device.pin(src)
        device.pin(dst)
        with pytest.raises(ValueError, match="size"):
            device.submit(CbdmaRequest(src=src, dst=dst, size=0))

    def test_ring_overflow_raises(self):
        env, device, space = make_device(
            timing=CbdmaTimingParams(ring_entries=1)
        )
        # The channel process has not run yet, so the single ring entry
        # is taken by the first request; the second overflows.
        device.submit(pinned_request(device, space, size=1 << 20))
        with pytest.raises(CbdmaChannelBusyError):
            device.submit(pinned_request(device, space, size=1 << 20))

    def test_channels_run_concurrently(self):
        env, device, space = make_device(n_channels=2)
        first = pinned_request(device, space, size=1 << 20)
        second = pinned_request(device, space, size=1 << 20)
        device.submit(first, channel_id=0)
        device.submit(second, channel_id=1)
        env.run()
        # Concurrent channels share the 14 GB/s device port equally, so
        # both finish around the same time (not back to back).
        delta = abs(first.times.completed - second.times.completed)
        assert delta < 0.2 * (first.times.completed - first.times.submitted)

    def test_device_port_caps_aggregate(self):
        env, device, space = make_device(n_channels=4)
        size = 1 << 20
        requests = [pinned_request(device, space, size=size) for _ in range(4)]
        start = env.now
        for index, request in enumerate(requests):
            device.submit(request, channel_id=index)
        env.run()
        elapsed = env.now - start
        aggregate = 4 * size / elapsed
        assert aggregate == pytest.approx(device.timing.device_bandwidth, rel=0.1)
