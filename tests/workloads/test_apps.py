"""Tests for the Vhost, CacheLib, SPDK, and libfabric case studies."""

import pytest

from repro.workloads.cachelib import CacheBenchConfig, ItemSizeProfile, run_cachebench
from repro.workloads.libfabric import (
    allreduce,
    bert_step,
    measure_transfer,
    pingpong_speedup,
)
from repro.workloads.spdk import DigestMode, SpdkConfig, run_spdk_target
from repro.workloads.vhost import RecordingArray, VhostConfig, run_vhost
from repro.sim import make_rng

KB = 1024
MB = 1024 * KB


class TestVhost:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            VhostConfig(packet_size=32).validate()
        with pytest.raises(ValueError):
            VhostConfig(bursts=0).validate()

    def test_all_packets_forwarded(self):
        result = run_vhost(VhostConfig(packet_size=512, bursts=20, use_dsa=True))
        assert result.packets_forwarded == 20 * 32

    def test_dsa_rate_flat_across_packet_sizes(self):
        """Fig 16b: offloaded forwarding rate is size-independent."""
        small = run_vhost(VhostConfig(packet_size=256, bursts=50, use_dsa=True))
        large = run_vhost(VhostConfig(packet_size=1518, bursts=50, use_dsa=True))
        assert large.forwarding_rate_mpps == pytest.approx(
            small.forwarding_rate_mpps, rel=0.05
        )

    def test_cpu_rate_drops_with_packet_size(self):
        """Paper: ~38% forwarding-rate drop from 256 B to 1 KB."""
        small = run_vhost(VhostConfig(packet_size=256, bursts=50, use_dsa=False))
        large = run_vhost(VhostConfig(packet_size=1024, bursts=50, use_dsa=False))
        drop = 1 - large.forwarding_rate_mpps / small.forwarding_rate_mpps
        assert 0.2 <= drop <= 0.45

    def test_speedup_range_above_256b(self):
        """Fig 16b: 1.14-2.29x for packets above 256 B."""
        for size, low, high in ((512, 1.1, 1.9), (1518, 1.9, 2.6)):
            cpu = run_vhost(VhostConfig(packet_size=size, bursts=50, use_dsa=False))
            dsa = run_vhost(VhostConfig(packet_size=size, bursts=50, use_dsa=True))
            ratio = dsa.forwarding_rate_mpps / cpu.forwarding_rate_mpps
            assert low <= ratio <= high

    def test_copy_share_grows_with_packet_size(self):
        """Paper: ~30% of cycles at 512 B, 50+% above 1 KB."""
        mid = run_vhost(VhostConfig(packet_size=512, bursts=30, use_dsa=False))
        big = run_vhost(VhostConfig(packet_size=1518, bursts=30, use_dsa=False))
        assert 0.25 <= mid.copy_cycle_fraction <= 0.45
        assert big.copy_cycle_fraction >= 0.5

    def test_multi_queue_forwarding(self):
        result = run_vhost(VhostConfig(packet_size=512, bursts=20, n_queues=4))
        assert result.packets_forwarded == 4 * 20 * 32


class TestRecordingArray:
    def test_in_order_release(self):
        array = RecordingArray()
        indices = [array.record() for _ in range(3)]
        array.mark_completed(indices[0])
        assert array.release_prefix() == 1

    def test_out_of_order_blocks_prefix(self):
        array = RecordingArray()
        indices = [array.record() for _ in range(3)]
        array.mark_completed(indices[2])
        assert array.release_prefix() == 0
        array.mark_completed(indices[0])
        array.mark_completed(indices[1])
        assert array.release_prefix() == 3
        assert array.reordered == 1

    def test_overflow_rejected(self):
        array = RecordingArray(capacity=1)
        array.record()
        with pytest.raises(RuntimeError):
            array.record()

    def test_bad_index_rejected(self):
        array = RecordingArray()
        with pytest.raises(IndexError):
            array.mark_completed(0)


class TestCacheLib:
    def test_size_profile_matches_paper(self):
        """Appendix B: ~4.8% of copies >= 8 KB carrying ~96% of bytes."""
        sizes = ItemSizeProfile().sample(make_rng(1), 200_000)
        large = sizes >= 8 * KB
        count_fraction = large.mean()
        byte_fraction = sizes[large].sum() / sizes.sum()
        assert 0.03 <= count_fraction <= 0.07
        assert 0.90 <= byte_fraction <= 0.99

    def test_dsa_improves_throughput_at_4_cores(self):
        base = run_cachebench(
            CacheBenchConfig(n_cores=4, n_threads=8, use_dsa=False, ops_per_thread=150)
        )
        dsa = run_cachebench(
            CacheBenchConfig(n_cores=4, n_threads=8, use_dsa=True, ops_per_thread=150)
        )
        assert dsa.ops_per_second > 1.2 * base.ops_per_second

    def test_improvement_declines_beyond_8_cores(self):
        """Fig 19a: gains flatten when cores outnumber the 4 WQs."""

        def improvement(cores, threads):
            base = run_cachebench(
                CacheBenchConfig(
                    n_cores=cores, n_threads=threads, use_dsa=False, ops_per_thread=150
                )
            )
            dsa = run_cachebench(
                CacheBenchConfig(
                    n_cores=cores, n_threads=threads, use_dsa=True, ops_per_thread=150
                )
            )
            return dsa.ops_per_second / base.ops_per_second

        assert improvement(4, 8) > improvement(12, 24)

    def test_tail_latency_improves(self):
        """Fig 19b: p99.9+ falls when big copies go to DSA."""
        base = run_cachebench(
            CacheBenchConfig(n_cores=4, n_threads=8, use_dsa=False, ops_per_thread=200)
        )
        dsa = run_cachebench(
            CacheBenchConfig(n_cores=4, n_threads=8, use_dsa=True, ops_per_thread=200)
        )
        assert dsa.tail_latency(99.9) < base.tail_latency(99.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheBenchConfig(n_cores=0).validate()
        with pytest.raises(ValueError):
            CacheBenchConfig(get_fraction=1.5).validate()


class TestSpdk:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpdkConfig(io_size=100).validate()
        with pytest.raises(ValueError):
            SpdkConfig(target_cores=0).validate()

    def test_dsa_matches_no_digest_iops(self):
        """Fig 21: DSA offload ~ no-digest at the same core count."""
        none = run_spdk_target(
            SpdkConfig(digest=DigestMode.NONE, target_cores=4, queue_depth=128, ios=800)
        )
        dsa = run_spdk_target(
            SpdkConfig(digest=DigestMode.DSA, target_cores=4, queue_depth=128, ios=800)
        )
        assert dsa.iops == pytest.approx(none.iops, rel=0.08)

    def test_isal_needs_more_cores(self):
        isal4 = run_spdk_target(
            SpdkConfig(digest=DigestMode.ISAL, target_cores=4, queue_depth=128, ios=800)
        )
        none4 = run_spdk_target(
            SpdkConfig(digest=DigestMode.NONE, target_cores=4, queue_depth=128, ios=800)
        )
        assert isal4.iops < 0.8 * none4.iops

    def test_dsa_latency_close_to_no_digest(self):
        none = run_spdk_target(
            SpdkConfig(digest=DigestMode.NONE, target_cores=6, queue_depth=64, ios=600)
        )
        isal = run_spdk_target(
            SpdkConfig(digest=DigestMode.ISAL, target_cores=6, queue_depth=64, ios=600)
        )
        dsa = run_spdk_target(
            SpdkConfig(digest=DigestMode.DSA, target_cores=6, queue_depth=64, ios=600)
        )
        assert dsa.latency.mean < 1.1 * none.latency.mean
        assert isal.latency.mean > dsa.latency.mean

    def test_large_io_saturates_network(self):
        result = run_spdk_target(
            SpdkConfig(
                io_size=128 * KB,
                digest=DigestMode.NONE,
                target_cores=4,
                queue_depth=96,
                ios=600,
            )
        )
        assert result.throughput == pytest.approx(
            result.config.costs.network_bandwidth, rel=0.3
        )


class TestLibfabric:
    def test_large_message_pingpong_speedup(self):
        """Fig 17a: up to ~5.1x at large sizes."""
        assert 4.0 <= pingpong_speedup(4 * MB) <= 5.5

    def test_small_message_speedup_modest(self):
        assert pingpong_speedup(4 * KB) < 2.0

    def test_speedup_grows_with_size(self):
        speedups = [pingpong_speedup(s) for s in (16 * KB, 128 * KB, 1 * MB)]
        assert speedups == sorted(speedups)

    def test_allreduce_speedup_near_5x_large(self):
        """Fig 17b: 5.0-5.2x for >= 1 MB messages, flat across ranks."""
        for ranks in (2, 4, 8):
            result = allreduce(16 * MB, ranks)
            assert 4.4 <= result.speedup <= 5.8

    def test_allreduce_needs_two_ranks(self):
        with pytest.raises(ValueError):
            allreduce(1 * MB, ranks=1)

    def test_bert_anchors(self):
        """Appendix A: AR 2.8x/3.3x and e2e 3.7%/8.8% for 2/8 ranks."""
        two = bert_step(2)
        eight = bert_step(8)
        assert 2.3 <= two.allreduce_speedup <= 3.3
        assert eight.allreduce_speedup > two.allreduce_speedup
        assert 0.02 <= two.end_to_end_speedup - 1 <= 0.06
        assert 0.06 <= eight.end_to_end_speedup - 1 <= 0.12

    def test_transfer_rejects_bad_size(self):
        with pytest.raises(ValueError):
            measure_transfer(0, use_dsa=False)
