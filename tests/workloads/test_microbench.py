"""Unit tests for the microbenchmark driver itself."""

import pytest

from repro.dsa.opcodes import Opcode
from repro.runtime.wait import WaitMode
from repro.workloads.microbench import (
    MicrobenchConfig,
    run_cbdma_microbench,
    run_dsa_microbench,
    run_software_microbench,
    sweep,
)

KB = 1024


class TestConfigValidation:
    def test_defaults_valid(self):
        MicrobenchConfig().validate()

    def test_bad_transfer_size(self):
        with pytest.raises(ValueError):
            MicrobenchConfig(transfer_size=0).validate()

    def test_queue_depth_beyond_dwq_size(self):
        with pytest.raises(ValueError, match="credits"):
            MicrobenchConfig(queue_depth=64, wq_size=32).validate()

    def test_synchronous_flag(self):
        assert MicrobenchConfig(queue_depth=1).synchronous
        assert not MicrobenchConfig(queue_depth=2).synchronous

    def test_payload_per_unit(self):
        cfg = MicrobenchConfig(transfer_size=100, batch_size=7)
        assert cfg.payload_per_unit == 700


class TestDsaRunner:
    def test_accounts_all_iterations(self):
        cfg = MicrobenchConfig(transfer_size=1 * KB, queue_depth=4, iterations=25)
        result = run_dsa_microbench(cfg)
        assert result.operations == 25
        assert result.payload_bytes == 25 * KB
        assert len(result.latency) == 25

    def test_batch_counts_members(self):
        cfg = MicrobenchConfig(
            transfer_size=1 * KB, batch_size=4, queue_depth=2, iterations=10
        )
        result = run_dsa_microbench(cfg)
        assert result.operations == 40
        assert result.payload_bytes == 40 * KB

    def test_multiple_workers_aggregate(self):
        cfg = MicrobenchConfig(
            transfer_size=1 * KB, queue_depth=4, iterations=10, n_workers=3, n_devices=3
        )
        result = run_dsa_microbench(cfg)
        assert result.operations == 30
        assert len(result.cores) == 3

    def test_crc_operation_runs(self):
        cfg = MicrobenchConfig(
            opcode=Opcode.CRCGEN, transfer_size=4 * KB, queue_depth=8, iterations=20
        )
        assert run_dsa_microbench(cfg).throughput > 0

    def test_fill_operation_runs(self):
        cfg = MicrobenchConfig(
            opcode=Opcode.FILL, transfer_size=4 * KB, queue_depth=8, iterations=20
        )
        assert run_dsa_microbench(cfg).throughput > 0

    def test_dualcast_moves_double_bytes(self):
        cfg = MicrobenchConfig(
            opcode=Opcode.DUALCAST, transfer_size=64 * KB, queue_depth=8, iterations=30
        )
        copy = MicrobenchConfig(transfer_size=64 * KB, queue_depth=8, iterations=30)
        # Dualcast writes twice the data -> lower payload throughput.
        assert run_dsa_microbench(cfg).throughput < run_dsa_microbench(copy).throughput

    def test_umwait_mode_tracks_fraction(self):
        cfg = MicrobenchConfig(
            transfer_size=16 * KB,
            queue_depth=1,
            iterations=20,
            wait_mode=WaitMode.UMWAIT,
        )
        result = run_dsa_microbench(cfg)
        assert 0.0 < result.umwait_fraction() <= 1.0


class TestSoftwareRunner:
    def test_throughput_matches_kernel_model(self):
        from repro.cpu.swlib import SoftwareKernels

        cfg = MicrobenchConfig(transfer_size=64 * KB, queue_depth=1, iterations=10)
        result = run_software_microbench(cfg)
        expected = SoftwareKernels().throughput(Opcode.MEMMOVE, 64 * KB)
        assert result.throughput == pytest.approx(expected, rel=0.01)

    def test_workers_scale_aggregate_throughput(self):
        one = run_software_microbench(
            MicrobenchConfig(transfer_size=64 * KB, iterations=10, n_workers=1)
        )
        four = run_software_microbench(
            MicrobenchConfig(transfer_size=64 * KB, iterations=10, n_workers=4)
        )
        assert four.throughput == pytest.approx(4 * one.throughput, rel=0.01)


class TestCbdmaRunner:
    def test_rejects_non_copy_ops(self):
        with pytest.raises(ValueError, match="copy only"):
            run_cbdma_microbench(MicrobenchConfig(opcode=Opcode.CRCGEN))

    def test_rejects_batching(self):
        with pytest.raises(ValueError, match="batch"):
            run_cbdma_microbench(MicrobenchConfig(batch_size=4))

    def test_saturates_at_channel_bandwidth(self):
        cfg = MicrobenchConfig(transfer_size=1 << 20, queue_depth=16, iterations=30)
        result = run_cbdma_microbench(cfg)
        assert result.throughput == pytest.approx(14.0, rel=0.05)


class TestSweep:
    def test_cartesian_axes(self):
        base = MicrobenchConfig(iterations=5, queue_depth=2)
        results = sweep(
            base,
            run_software_microbench,
            transfer_size=[256, 512],
            batch_size=[1, 2],
        )
        assert len(results) == 4
        points = [p for p, _r in results]
        assert {"transfer_size": 256, "batch_size": 1} in points
        assert {"transfer_size": 512, "batch_size": 2} in points
