"""Unit tests for the X-Mem cache-pollution workload (Figs 12-13)."""

import pytest

from repro.workloads.xmem import (
    CoRunKind,
    XmemParams,
    run_fig13_sweep,
    run_xmem_scenario,
)

MB = 1024 * 1024


class TestParams:
    def test_defaults_valid(self):
        XmemParams().validate()

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            XmemParams(instances=0).validate()
        with pytest.raises(ValueError):
            XmemParams(mlp=0).validate()


class TestScenarios:
    def test_software_corun_inflates_latency_at_4mb(self):
        """Fig 13 anchor: ~+43% at 4 MB working set."""
        none = run_xmem_scenario(CoRunKind.NONE, working_set=4 * MB, duration_s=2.0)
        soft = run_xmem_scenario(CoRunKind.SOFTWARE, working_set=4 * MB, duration_s=2.0)
        ratio = soft.mean_latency_ns / none.mean_latency_ns
        assert 1.25 <= ratio <= 1.75

    def test_dsa_corun_barely_moves_latency(self):
        none = run_xmem_scenario(CoRunKind.NONE, working_set=4 * MB, duration_s=2.0)
        dsa = run_xmem_scenario(CoRunKind.DSA, working_set=4 * MB, duration_s=2.0)
        assert dsa.mean_latency_ns <= 1.05 * none.mean_latency_ns

    def test_small_working_set_unaffected(self):
        """Inside L2, no scenario matters."""
        none = run_xmem_scenario(CoRunKind.NONE, working_set=1 * MB, duration_s=1.0)
        soft = run_xmem_scenario(CoRunKind.SOFTWARE, working_set=1 * MB, duration_s=1.0)
        assert soft.mean_latency_ns == pytest.approx(none.mean_latency_ns, rel=0.02)

    def test_huge_working_set_converges(self):
        """Beyond the LLC everything misses; curves meet (Fig 13 tail)."""
        none = run_xmem_scenario(CoRunKind.NONE, working_set=64 * MB, duration_s=2.0)
        soft = run_xmem_scenario(CoRunKind.SOFTWARE, working_set=64 * MB, duration_s=2.0)
        assert soft.mean_latency_ns <= 1.15 * none.mean_latency_ns

    def test_latency_monotonic_in_working_set(self):
        latencies = [
            run_xmem_scenario(CoRunKind.NONE, working_set=wss, duration_s=1.0).mean_latency_ns
            for wss in (1 * MB, 4 * MB, 16 * MB, 64 * MB)
        ]
        assert latencies == sorted(latencies)


class TestFig12Timelines:
    def test_memcpy_dominates_llc_in_software_scenario(self):
        scenario = run_xmem_scenario(
            CoRunKind.SOFTWARE, working_set=4 * MB, duration_s=2.0
        )
        final_copy = scenario.occupancy_series["copy0"][-1][1]
        final_probe = scenario.occupancy_series["xmem0"][-1][1]
        assert final_copy > 5 * final_probe

    def test_dsa_writes_confined_to_io_ways(self):
        from repro.platform import spr_platform

        platform = spr_platform(n_devices=0)
        scenario = run_xmem_scenario(
            CoRunKind.DSA, working_set=4 * MB, duration_s=2.0, platform=platform
        )
        io_total = sum(
            scenario.occupancy_series[f"copy{i}"][-1][1] for i in range(4)
        )
        assert io_total <= platform.memsys.llc.io_capacity * 1.01
        # Probes keep their full beyond-L2 footprint.
        assert scenario.occupancy_series["xmem0"][-1][1] == pytest.approx(
            2 * MB, rel=0.05
        )

    def test_xmem_window_gates_probes(self):
        scenario = run_xmem_scenario(
            CoRunKind.SOFTWARE,
            working_set=4 * MB,
            duration_s=2.0,
            xmem_window=(0.5, 1.5),
        )
        before = [v for t, v in scenario.occupancy_series["xmem0"] if t < 0.45]
        after = [v for t, v in scenario.occupancy_series["xmem0"] if t > 1.6]
        assert max(before) == 0.0
        assert max(after) == 0.0
        during = [v for t, v in scenario.occupancy_series["xmem0"] if 0.8 < t < 1.4]
        assert max(during) > 0.0


class TestFig13Sweep:
    def test_sweep_covers_all_kinds(self):
        curves = run_fig13_sweep([1 * MB, 4 * MB], duration_s=0.5)
        assert set(curves) == set(CoRunKind)
        assert [wss for wss, _lat in curves[CoRunKind.NONE]] == [1 * MB, 4 * MB]
