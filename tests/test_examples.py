"""Smoke tests: every shipped example runs to completion.

Each example prints a final "<name>: OK" sentinel; running them as
real subprocesses catches import errors, API drift, and assertion
failures inside the examples themselves.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_are_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 4  # quickstart + at least three scenarios


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_clean(example):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    sentinel = f"{example[:-3]}: OK"
    assert sentinel in completed.stdout, f"missing sentinel {sentinel!r}"
