"""Tests for the executable G1-G6 advisor."""

import pytest

from repro.dsa.config import WqMode
from repro.dsa.opcodes import Opcode
from repro.guidelines import OffloadAdvisor, Recommendation
from repro.mem.system import TierKind

KB = 1024


@pytest.fixture
def advisor():
    return OffloadAdvisor()


class TestDerivedThresholds:
    def test_sync_threshold_in_4_to_16k(self, advisor):
        """The modelled sync crossover lands where the paper's does."""
        threshold = advisor.sync_threshold()
        assert 4 * KB <= threshold <= 16 * KB

    def test_async_threshold_near_256b(self, advisor):
        threshold = advisor.async_threshold()
        assert 128 <= threshold <= 512

    def test_async_threshold_below_sync(self, advisor):
        assert advisor.async_threshold() < advisor.sync_threshold()

    def test_thresholds_follow_calibration(self):
        """Slower software makes offload attractive earlier."""
        from repro.cpu.swlib import SoftwareKernels, SwKernelParams

        slow = OffloadAdvisor(
            kernels=SoftwareKernels(
                {Opcode.MEMMOVE: SwKernelParams(60.0, 3.0, 10.0, 2.0)}
            )
        )
        assert slow.sync_threshold() < OffloadAdvisor().sync_threshold()


class TestRecommend:
    def test_large_transfer_offloads(self, advisor):
        rec = advisor.recommend(64 * KB)
        assert rec.use_dsa and rec.asynchronous
        assert "G2" in rec.guidelines

    def test_small_transfer_stays_on_core(self, advisor):
        rec = advisor.recommend(128, asynchronous_possible=False)
        assert not rec.use_dsa
        assert any("on the core" in reason for reason in rec.reasons)

    def test_pollution_sensitivity_flips_small_transfers(self, advisor):
        rec = advisor.recommend(128, pollution_sensitive_corunners=True)
        assert rec.use_dsa

    def test_contiguous_data_uses_single_descriptor(self, advisor):
        rec = advisor.recommend(1 * KB * 1024, contiguous=True)
        assert rec.batch_size == 1
        assert "G1" in rec.guidelines

    def test_scattered_data_batches(self, advisor):
        rec = advisor.recommend(64 * KB, contiguous=False)
        assert rec.batch_size > 1

    def test_sync_sweet_spot_batch(self, advisor):
        rec = advisor.recommend(
            64 * KB, asynchronous_possible=False, contiguous=False
        )
        assert 4 <= rec.batch_size <= 8

    def test_hot_consumer_sets_cache_control(self, advisor):
        rec = advisor.recommend(64 * KB, consumer_reads_soon=True)
        assert rec.cache_control
        assert "G3" in rec.guidelines

    def test_streaming_keeps_llc_clean(self, advisor):
        rec = advisor.recommend(64 * KB, consumer_reads_soon=False)
        assert not rec.cache_control

    def test_more_threads_than_wqs_shares(self, advisor):
        rec = advisor.recommend(64 * KB, submitting_threads=8, available_wqs=4)
        assert rec.wq_mode is WqMode.SHARED
        assert "G6" in rec.guidelines

    def test_enough_wqs_dedicates(self, advisor):
        rec = advisor.recommend(64 * KB, submitting_threads=2, available_wqs=4)
        assert rec.wq_mode is WqMode.DEDICATED

    def test_invalid_size_rejected(self, advisor):
        with pytest.raises(ValueError):
            advisor.recommend(0)

    def test_recommendation_cite_dedups(self):
        rec = Recommendation(use_dsa=True)
        rec.cite("G1", "a")
        rec.cite("G1", "b")
        assert rec.guidelines == ["G1"]
        assert len(rec.reasons) == 2


class TestTierAdvice:
    def test_dram_to_cxl_warns_about_writes(self, advisor):
        advice = advisor.recommend_tier_destination(TierKind.DRAM, TierKind.CXL)
        assert any("destination" in line for line in advice)

    def test_cxl_to_dram_is_the_fast_direction(self, advisor):
        advice = advisor.recommend_tier_destination(TierKind.CXL, TierKind.DRAM)
        assert any("fast" in line for line in advice)

    def test_cxl_to_cxl_flagged_slowest(self, advisor):
        advice = advisor.recommend_tier_destination(TierKind.CXL, TierKind.CXL)
        assert any("lowest throughput" in line for line in advice)


class TestEngineAdvice:
    def test_small_transfers_want_more_engines(self, advisor):
        assert advisor.recommend_engines(512) >= 2

    def test_large_transfers_need_one(self, advisor):
        assert advisor.recommend_engines(1 << 20) == 1

    def test_matches_fig7_measurement(self, advisor):
        """The advisor's engine count actually helps in the simulator."""
        from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

        engines = advisor.recommend_engines(512)
        one = run_dsa_microbench(
            MicrobenchConfig(
                transfer_size=512, batch_size=8, queue_depth=8,
                engines_per_group=1, iterations=40,
            )
        )
        advised = run_dsa_microbench(
            MicrobenchConfig(
                transfer_size=512, batch_size=8, queue_depth=8,
                engines_per_group=engines, iterations=40,
            )
        )
        assert advised.throughput > 1.5 * one.throughput
