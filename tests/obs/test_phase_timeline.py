"""Acceptance: the Fig 5 breakdown is reconstructible from a trace alone.

Runs the fig5 experiment through the real CLI with ``--trace``, then
reads back only the exported ``trace.json`` — no access to the
simulation objects — and rebuilds the per-descriptor phase timeline.
"""

import json

import pytest

from repro.__main__ import main
from repro.obs import PHASE_CATEGORIES, phase_breakdown, span_durations

LIFECYCLE = ("submit", "queue", "translate", "execute", "wait")


@pytest.fixture(scope="module")
def fig5_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "fig5_trace.json"
    exit_code = main(["run", "fig5", "--quick", "--trace", str(path)])
    assert exit_code == 0
    return json.loads(path.read_text())


def test_trace_parses_and_has_span_pairs_for_lifecycle_categories(fig5_trace):
    for category in LIFECYCLE:
        begins = [e for e in fig5_trace if e["ph"] == "B" and e["cat"] == category]
        ends = [e for e in fig5_trace if e["ph"] == "E" and e["cat"] == category]
        assert begins, f"no begin events for {category!r}"
        assert len(begins) == len(ends), f"unbalanced spans for {category!r}"


def test_spans_are_balanced_per_thread(fig5_trace):
    depth = {}
    for event in fig5_trace:
        key = (event["pid"], event["tid"])
        if event["ph"] == "B":
            depth[key] = depth.get(key, 0) + 1
        elif event["ph"] == "E":
            depth[key] = depth.get(key, 0) - 1
            assert depth[key] >= 0, f"E before B on thread {key}"
    assert all(open_spans == 0 for open_spans in depth.values())


def test_fig5_breakdown_reconstructed_from_trace_alone(fig5_trace):
    breakdown = phase_breakdown(fig5_trace)
    assert set(breakdown) == set(PHASE_CATEGORIES)
    # `queue` may legitimately be zero: with idle engines a descriptor is
    # dispatched at the same timestamp it is enqueued.  Its B/E pairs are
    # still asserted present by the span-pair test above.
    assert breakdown["queue"] >= 0.0
    for category in ("alloc",) + tuple(c for c in LIFECYCLE if c != "queue"):
        assert breakdown[category] > 0.0, f"{category!r} missing from timeline"
    # The paper's Fig 5 claims, checked purely against the trace:
    # allocation dominates the host-side steps...
    assert breakdown["alloc"] > breakdown["prepare"] + breakdown["submit"]
    # ...prepare is the cheapest non-trivial step...
    assert breakdown["prepare"] == min(
        value for value in breakdown.values() if value > 0.0
    )
    # ...and waiting dominates once allocation is amortized.
    assert breakdown["wait"] > breakdown["prepare"] + breakdown["submit"]


class TestSpanDurationEdgeCases:
    """Synthetic traces probing the reconstruction corner cases."""

    @staticmethod
    def _b(ts, cat, pid=1, tid=1):
        return {"ph": "B", "ts": ts, "cat": cat, "pid": pid, "tid": tid}

    @staticmethod
    def _e(ts, pid=1, tid=1):
        return {"ph": "E", "ts": ts, "pid": pid, "tid": tid}

    def test_unclosed_span_at_end_of_run_is_dropped(self):
        # A run cut short mid-descriptor: `execute` opened, never closed.
        events = [
            self._b(0.0, "submit"),
            self._e(2.0),
            self._b(5.0, "execute"),
        ]
        totals = span_durations(events)
        assert totals == {1: {"submit": 2.0}}

    def test_all_spans_unclosed_yields_no_tracks(self):
        events = [self._b(0.0, "submit"), self._b(1.0, "execute", tid=2)]
        assert span_durations(events) == {}
        breakdown = phase_breakdown(events)
        assert all(value == 0.0 for value in breakdown.values())

    def test_interleaved_agents_on_same_track_keep_separate_stacks(self):
        # One descriptor track (tid=1) whose phases are emitted by two
        # agents (core pid=1, engine pid=2).  The engine's E must close
        # the engine's B, not the core's still-open span, even though
        # the raw event order interleaves them.
        events = [
            self._b(0.0, "wait", pid=1),       # core opens wait
            self._b(1.0, "execute", pid=2),    # engine starts executing
            self._e(4.0, pid=2),               # engine closes execute (3)
            self._e(6.0, pid=1),               # core closes wait (6)
        ]
        totals = span_durations(events)
        # Durations merged by tid across pids, each pair matched per pid.
        assert totals == {1: {"wait": 6.0, "execute": 3.0}}

    def test_unbalanced_end_on_a_thread_raises(self):
        events = [self._b(0.0, "wait", pid=1), self._e(1.0, pid=2)]
        with pytest.raises(ValueError):
            span_durations(events)

    def test_nested_spans_on_one_thread_close_innermost_first(self):
        events = [
            self._b(0.0, "wait"),
            self._b(1.0, "translate"),
            self._e(2.0),   # closes translate (1)
            self._e(5.0),   # closes wait (5)
        ]
        assert span_durations(events) == {1: {"wait": 5.0, "translate": 1.0}}

    def test_unclosed_spans_do_not_pollute_breakdown_average(self):
        # Track 1 is complete; track 2 has only an unclosed `execute`.
        # Track 2 therefore carries no lifecycle durations and must not
        # dilute the per-descriptor mean.
        events = [
            self._b(0.0, "execute", tid=1),
            self._e(4.0, tid=1),
            self._b(9.0, "execute", tid=2),
        ]
        breakdown = phase_breakdown(events)
        assert breakdown["execute"] == 4.0


def test_wait_covers_device_side_phases(fig5_trace):
    # The host observes `wait` while the device runs queue + translate +
    # execute, so per descriptor wait ≥ the device-side phases it spans.
    per_track = span_durations(fig5_trace)
    descriptor_tracks = [cats for cats in per_track.values() if "wait" in cats]
    assert descriptor_tracks
    for cats in descriptor_tracks:
        device_side = cats.get("translate", 0.0) + cats.get("execute", 0.0)
        assert cats["wait"] >= device_side * 0.99
