"""Acceptance: the Fig 5 breakdown is reconstructible from a trace alone.

Runs the fig5 experiment through the real CLI with ``--trace``, then
reads back only the exported ``trace.json`` — no access to the
simulation objects — and rebuilds the per-descriptor phase timeline.
"""

import json

import pytest

from repro.__main__ import main
from repro.obs import PHASE_CATEGORIES, phase_breakdown, span_durations

LIFECYCLE = ("submit", "queue", "translate", "execute", "wait")


@pytest.fixture(scope="module")
def fig5_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "fig5_trace.json"
    exit_code = main(["run", "fig5", "--quick", "--trace", str(path)])
    assert exit_code == 0
    return json.loads(path.read_text())


def test_trace_parses_and_has_span_pairs_for_lifecycle_categories(fig5_trace):
    for category in LIFECYCLE:
        begins = [e for e in fig5_trace if e["ph"] == "B" and e["cat"] == category]
        ends = [e for e in fig5_trace if e["ph"] == "E" and e["cat"] == category]
        assert begins, f"no begin events for {category!r}"
        assert len(begins) == len(ends), f"unbalanced spans for {category!r}"


def test_spans_are_balanced_per_thread(fig5_trace):
    depth = {}
    for event in fig5_trace:
        key = (event["pid"], event["tid"])
        if event["ph"] == "B":
            depth[key] = depth.get(key, 0) + 1
        elif event["ph"] == "E":
            depth[key] = depth.get(key, 0) - 1
            assert depth[key] >= 0, f"E before B on thread {key}"
    assert all(open_spans == 0 for open_spans in depth.values())


def test_fig5_breakdown_reconstructed_from_trace_alone(fig5_trace):
    breakdown = phase_breakdown(fig5_trace)
    assert set(breakdown) == set(PHASE_CATEGORIES)
    # `queue` may legitimately be zero: with idle engines a descriptor is
    # dispatched at the same timestamp it is enqueued.  Its B/E pairs are
    # still asserted present by the span-pair test above.
    assert breakdown["queue"] >= 0.0
    for category in ("alloc",) + tuple(c for c in LIFECYCLE if c != "queue"):
        assert breakdown[category] > 0.0, f"{category!r} missing from timeline"
    # The paper's Fig 5 claims, checked purely against the trace:
    # allocation dominates the host-side steps...
    assert breakdown["alloc"] > breakdown["prepare"] + breakdown["submit"]
    # ...prepare is the cheapest non-trivial step...
    assert breakdown["prepare"] == min(
        value for value in breakdown.values() if value > 0.0
    )
    # ...and waiting dominates once allocation is amortized.
    assert breakdown["wait"] > breakdown["prepare"] + breakdown["submit"]


def test_wait_covers_device_side_phases(fig5_trace):
    # The host observes `wait` while the device runs queue + translate +
    # execute, so per descriptor wait ≥ the device-side phases it spans.
    per_track = span_durations(fig5_trace)
    descriptor_tracks = [cats for cats in per_track.values() if "wait" in cats]
    assert descriptor_tracks
    for cats in descriptor_tracks:
        device_side = cats.get("translate", 0.0) + cats.get("execute", 0.0)
        assert cats["wait"] >= device_side * 0.99
