"""Tracer semantics: spans, tracks, and the disabled no-op path."""

from repro.obs import NULL_TRACER, NullTracer, Tracer, install_tracer, uninstall_tracer
from repro.sim.engine import Environment


class TestSpans:
    def test_begin_end_pair_recorded_in_order(self):
        tracer = Tracer()
        tracer.begin(10.0, "copy", "execute", "pe0", 1)
        tracer.end(25.0, "copy", "execute", "pe0", 1)
        phases = [event[0] for event in tracer.events]
        assert phases == ["B", "E"]

    def test_nested_spans_keep_monotonic_timestamps(self):
        tracer = Tracer()
        tracer.begin(0.0, "outer", "execute", "pe0", 1)
        tracer.begin(5.0, "inner", "translate", "pe0", 1)
        tracer.instant(6.0, "fault", "translate", "pe0", 1)
        tracer.end(9.0, "inner", "translate", "pe0", 1)
        tracer.end(20.0, "outer", "execute", "pe0", 1)
        timestamps = [event[1] for event in tracer.events]
        assert timestamps == sorted(timestamps)
        # Nesting: inner closes before outer on the same track.
        order = [(event[0], event[2]) for event in tracer.events]
        assert order.index(("E", "inner")) < order.index(("E", "outer"))

    def test_complete_records_duration(self):
        tracer = Tracer()
        tracer.complete(100.0, 7.5, "batch_fetch", "batch", "pe0", 3)
        phase, ts, _name, _cat, _agent, _track, args = tracer.events[0]
        assert phase == "X"
        assert ts == 100.0
        assert args["_dur"] == 7.5

    def test_tracks_are_unique(self):
        tracer = Tracer()
        tracks = {tracer.next_track() for _ in range(100)}
        assert len(tracks) == 100


class TestDisabledTracer:
    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        tracer.begin(0.0, "a", "cat")
        tracer.end(1.0, "a", "cat")
        tracer.complete(2.0, 1.0, "b", "cat")
        tracer.instant(3.0, "c", "cat")
        assert len(tracer.events) == 0
        assert not tracer.enabled

    def test_environment_defaults_to_null_singleton(self):
        env = Environment()
        assert env.tracer is NULL_TRACER

    def test_simulation_with_default_tracer_emits_no_events(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert len(env.tracer.events) == 0


class TestInstall:
    def test_installed_tracer_adopted_by_new_environments(self):
        tracer = Tracer()
        install_tracer(tracer)
        try:
            env = Environment()
            assert env.tracer is tracer
        finally:
            uninstall_tracer()
        assert Environment().tracer is NULL_TRACER
