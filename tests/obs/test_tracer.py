"""Tracer semantics: spans, tracks, and the disabled no-op path."""

from repro.obs import NULL_TRACER, NullTracer, Tracer, install_tracer, uninstall_tracer
from repro.sim.engine import Environment


class TestSpans:
    def test_begin_end_pair_recorded_in_order(self):
        tracer = Tracer()
        tracer.begin(10.0, "copy", "execute", "pe0", 1)
        tracer.end(25.0, "copy", "execute", "pe0", 1)
        phases = [event[0] for event in tracer.events]
        assert phases == ["B", "E"]

    def test_nested_spans_keep_monotonic_timestamps(self):
        tracer = Tracer()
        tracer.begin(0.0, "outer", "execute", "pe0", 1)
        tracer.begin(5.0, "inner", "translate", "pe0", 1)
        tracer.instant(6.0, "fault", "translate", "pe0", 1)
        tracer.end(9.0, "inner", "translate", "pe0", 1)
        tracer.end(20.0, "outer", "execute", "pe0", 1)
        timestamps = [event[1] for event in tracer.events]
        assert timestamps == sorted(timestamps)
        # Nesting: inner closes before outer on the same track.
        order = [(event[0], event[2]) for event in tracer.events]
        assert order.index(("E", "inner")) < order.index(("E", "outer"))

    def test_complete_records_duration(self):
        tracer = Tracer()
        tracer.complete(100.0, 7.5, "batch_fetch", "batch", "pe0", 3)
        phase, ts, _name, _cat, _agent, _track, args = tracer.events[0]
        assert phase == "X"
        assert ts == 100.0
        assert args["_dur"] == 7.5

    def test_tracks_are_unique(self):
        tracer = Tracer()
        tracks = {tracer.next_track() for _ in range(100)}
        assert len(tracks) == 100


class TestAbsorb:
    def test_absorb_with_only_default_track_events_is_identity(self):
        """DEFAULT_TRACK (0) events need no remap and must claim no ids."""
        parent = Tracer()
        parent.next_track()  # parent is at 1
        worker = Tracer()
        worker.instant(1.0, "a", "cat", "sim", 0)
        worker.instant(2.0, "b", "cat", "sim", 0)
        assert parent.absorb(worker.events) == 2
        assert [record[5] for record in parent.events] == [0, 0]
        # No phantom worker tracks were reserved: the next parent track
        # is 2, not shifted past a highest-track of zero plus anything.
        assert parent.next_track() == 2

    def test_absorb_empty_list_leaves_track_counter_alone(self):
        parent = Tracer()
        parent.next_track()
        assert parent.absorb([]) == 0
        assert parent.next_track() == 2

    def test_absorb_shifts_only_nonzero_tracks(self):
        parent = Tracer()
        parent.next_track()
        parent.next_track()  # parent handed out 1 and 2
        worker = Tracer()
        worker.begin(0.0, "w", "execute", "pe0", worker.next_track())
        worker.instant(0.5, "mark", "cat", "sim", 0)
        worker.end(1.0, "w", "execute", "pe0", 1)
        parent.absorb(worker.events)
        assert [record[5] for record in parent.events] == [3, 0, 3]
        # Subsequent parent tracks continue past the remapped range.
        assert parent.next_track() == 4


class TestDisabledTracer:
    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        tracer.begin(0.0, "a", "cat")
        tracer.end(1.0, "a", "cat")
        tracer.complete(2.0, 1.0, "b", "cat")
        tracer.instant(3.0, "c", "cat")
        assert len(tracer.events) == 0
        assert not tracer.enabled

    def test_environment_defaults_to_null_singleton(self):
        env = Environment()
        assert env.tracer is NULL_TRACER

    def test_simulation_with_default_tracer_emits_no_events(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert len(env.tracer.events) == 0


class TestInstall:
    def test_installed_tracer_adopted_by_new_environments(self):
        tracer = Tracer()
        install_tracer(tracer)
        try:
            env = Environment()
            assert env.tracer is tracer
        finally:
            uninstall_tracer()
        assert Environment().tracer is NULL_TRACER
