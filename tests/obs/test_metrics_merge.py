"""Exact metrics merge: backends, export/absorb_state, --jobs 2 regression.

The old parallel path flattened worker histograms to per-leaf counters
(:meth:`MetricsRegistry.absorb_flat`), so a merged ``p99`` was just the
last worker's final value and the parent registry lost the distribution
entirely.  These tests pin the fixed behavior: worker registries export
invertible state, histograms merge sample-for-sample (exact backend) or
bucket-for-bucket (streaming), and a ``--jobs 2`` run leaves the parent
registry with *live* histograms whose percentiles match a serial run.
"""

import multiprocessing
import sys
import types

import pytest

from repro.exec import ParallelRunner
from repro.experiments import registry as exp_registry
from repro.obs import (
    AUTO_STREAMING_THRESHOLD,
    HistogramMetric,
    MetricsRegistry,
    StreamingHistogram,
    install_metrics,
    set_default_hist_backend,
    uninstall_metrics,
)
from repro.sim.stats import Histogram as ExactHistogram


@pytest.fixture(autouse=True)
def _clean_obs():
    yield
    uninstall_metrics()
    set_default_hist_backend("auto")


class TestHistogramBackends:
    def test_default_is_auto_and_starts_exact(self):
        metric = HistogramMetric("lat")
        assert metric.backend == "exact"
        assert isinstance(metric.samples, ExactHistogram)

    def test_auto_promotes_at_threshold(self):
        metric = HistogramMetric("lat", backend="auto")
        for i in range(AUTO_STREAMING_THRESHOLD - 1):
            metric.add(float(i % 97) + 1.0)
        assert metric.backend == "exact"
        metric.add(1.0)
        assert metric.backend == "streaming"
        # Nothing was lost in the promotion.
        assert len(metric.samples) == AUTO_STREAMING_THRESHOLD

    def test_exact_backend_never_promotes(self):
        metric = HistogramMetric("lat", backend="exact")
        for i in range(AUTO_STREAMING_THRESHOLD + 10):
            metric.add(float(i))
        assert metric.backend == "exact"

    def test_streaming_backend_from_the_start(self):
        metric = HistogramMetric("lat", backend="streaming")
        assert metric.backend == "streaming"
        assert isinstance(metric.samples, StreamingHistogram)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            HistogramMetric("lat", backend="hdr")
        with pytest.raises(ValueError):
            set_default_hist_backend("hdr")

    def test_registry_histogram_backend_kwarg(self):
        registry = MetricsRegistry()
        metric = registry.histogram("lat", backend="streaming")
        assert metric.backend == "streaming"
        # Get-or-create ignores the kwarg on the second call.
        assert registry.histogram("lat") is metric

    def test_set_default_backend_applies_to_new_metrics(self):
        set_default_hist_backend("streaming")
        assert MetricsRegistry().histogram("x").backend == "streaming"


class TestStateMerge:
    def _registry_with(self, samples, backend="exact"):
        registry = MetricsRegistry()
        registry.counter("ops").add(len(samples))
        gauge = registry.gauge("depth")
        gauge.update(0.0, 0.0)
        gauge.update(10.0, max(samples))
        hist = registry.histogram("lat", backend=backend)
        for value in samples:
            hist.add(value)
        return registry

    def test_histogram_merge_is_exact_not_last_writer_wins(self):
        """The absorb_flat regression: merged p99 must cover both workers."""
        worker_a = self._registry_with([500.0] * 100)
        worker_b = self._registry_with([2.0] * 100)
        parent = MetricsRegistry()
        parent.absorb_state(worker_a.export_state())
        parent.absorb_state(worker_b.export_state())
        merged = parent.histogram("lat")
        assert isinstance(merged, HistogramMetric)
        assert len(merged.samples) == 200
        combined = ExactHistogram()
        combined.extend([500.0] * 100 + [2.0] * 100)
        assert merged.percentile(99) == combined.percentile(99)
        # absorb_flat would have left p99 at worker_b's 2.0.
        assert merged.percentile(99) != worker_b.histogram("lat").percentile(99)
        assert parent.counter("ops").value == 200.0

    def test_streaming_states_merge_bucketwise(self):
        worker_a = self._registry_with([float(i) for i in range(1, 1000)], backend="streaming")
        worker_b = self._registry_with([float(i) for i in range(1000, 2000)], backend="streaming")
        parent = MetricsRegistry()
        parent.absorb_state(worker_a.export_state())
        parent.absorb_state(worker_b.export_state())
        merged = parent.histogram("lat")
        assert merged.backend == "streaming"
        assert len(merged.samples) == 1999
        exact_p99 = sorted(range(1, 2000))[-20]  # nearest-rank by hand
        assert merged.percentile(99) == pytest.approx(exact_p99, rel=0.01)

    def test_mixed_backends_promote_to_streaming(self):
        exact_worker = self._registry_with([1.0, 2.0, 3.0], backend="exact")
        stream_worker = self._registry_with([4.0, 5.0], backend="streaming")
        parent = MetricsRegistry()
        parent.absorb_state(stream_worker.export_state())
        parent.absorb_state(exact_worker.export_state())
        merged = parent.histogram("lat")
        assert merged.backend == "streaming"
        assert len(merged.samples) == 5

    def test_gauge_merge_spans_and_maxima(self):
        worker_a = MetricsRegistry()
        worker_a.gauge("depth").update(0.0, 4.0)
        worker_a.gauge("depth").update(10.0, 0.0)  # mean 4 over 10
        worker_b = MetricsRegistry()
        worker_b.gauge("depth").update(0.0, 8.0)
        worker_b.gauge("depth").update(30.0, 0.0)  # mean 8 over 30
        parent = MetricsRegistry()
        parent.absorb_state(worker_a.export_state())
        parent.absorb_state(worker_b.export_state())
        gauge = parent.gauge("depth")
        assert gauge.maximum == 8.0
        assert gauge.mean() == pytest.approx((4.0 * 10 + 8.0 * 30) / 40.0)

    def test_state_is_picklable(self):
        import pickle

        state = self._registry_with([1.0, 2.0], backend="streaming").export_state()
        assert pickle.loads(pickle.dumps(state))["lat"][0] == "histogram"

    def test_absorb_flat_remains_the_lossy_fallback(self):
        registry = MetricsRegistry()
        registry.absorb_flat({"lat.p99": 7.0})
        assert registry.snapshot() == {"lat.p99": 7.0}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().absorb_state({"x": ("thermometer", 1.0)})


def _probe_module(name, offset):
    """An importable-after-fork experiment that fills registry metrics."""
    module = types.ModuleType(name)

    def run(quick=False):
        from repro.experiments.base import ExperimentResult
        from repro.obs import installed_metrics

        registry = installed_metrics()
        hist = registry.histogram("probe.lat")
        for i in range(200):
            hist.add(float((i * 7919) % 997) + offset)
        registry.counter("probe.ops").add(200)
        gauge = registry.gauge("probe.depth")
        gauge.update(0.0, 1.0)
        gauge.update(100.0, 0.0)
        return ExperimentResult(exp_id=name, title="probe", description="")

    module.run = run
    return module


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="dynamic probe experiments reach workers via fork inheritance",
)
class TestJobs2Regression:
    def test_jobs2_percentiles_match_serial(self, monkeypatch):
        """Satellite regression: --jobs 2 and serial agree on percentiles."""
        for probe, offset in (("probe_a", 0.0), ("probe_b", 1000.0)):
            monkeypatch.setitem(sys.modules, f"repro_test_{probe}", _probe_module(probe, offset))
            monkeypatch.setitem(exp_registry._EXPERIMENTS, probe, f"repro_test_{probe}")

        serial_registry = MetricsRegistry()
        install_metrics(serial_registry)
        serial = ParallelRunner(jobs=1, quick=True).run(["probe_a", "probe_b"])
        serial_snapshot = serial_registry.snapshot()
        serial_p99 = serial_registry.histogram("probe.lat").percentile(99)
        uninstall_metrics()

        parallel_registry = MetricsRegistry()
        install_metrics(parallel_registry)
        parallel = ParallelRunner(jobs=2, quick=True).run(["probe_a", "probe_b"])
        uninstall_metrics()

        assert all(o.ok for o in serial + parallel), [o.error for o in serial + parallel]
        # The parent registry holds the last experiment's metrics as
        # LIVE objects: a real histogram with the serial p99, not a
        # flattened probe.lat.p99 counter.
        merged = parallel_registry.histogram("probe.lat")
        assert isinstance(merged, HistogramMetric)
        assert merged.percentile(99) == serial_p99
        assert parallel_registry.snapshot() == serial_snapshot
        for ser, par in zip(serial, parallel):
            assert ser.result.metrics == par.result.metrics
