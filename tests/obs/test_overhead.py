"""Self-metering: MemoryWatermark and the obs.overhead metric family."""

import tracemalloc

from repro.obs import (
    MemoryWatermark,
    MetricsRegistry,
    RingTracer,
    publish_overhead,
    set_default_hist_backend,
)


class TestMemoryWatermark:
    def test_peak_monotonic_and_positive(self):
        with MemoryWatermark() as watermark:
            blob = [list(range(1000)) for _ in range(100)]
            first = watermark.sample()
            del blob
            second = watermark.sample()
        assert first > 0
        assert second >= first  # a high-water mark never goes down

    def test_stop_only_stops_what_it_started(self):
        already = tracemalloc.is_tracing()
        try:
            tracemalloc.start()
            watermark = MemoryWatermark().start()
            watermark.stop()
            assert tracemalloc.is_tracing()  # outer tracing untouched
        finally:
            if not already:
                tracemalloc.stop()

    def test_stop_is_idempotent(self):
        watermark = MemoryWatermark().start()
        peak = watermark.stop()
        assert watermark.stop() == peak
        assert not tracemalloc.is_tracing()


class TestPublishOverhead:
    def test_tracer_and_histogram_accounting(self, tmp_path):
        tracer = RingTracer(capacity=10, spill_dir=str(tmp_path))
        for i in range(25):
            tracer.instant(float(i), "t", "cat")
        source = MetricsRegistry()
        set_default_hist_backend("streaming")
        try:
            streaming_hist = source.histogram("lat.stream")
        finally:
            set_default_hist_backend("auto")
        exact_hist = source.histogram("lat.exact", backend="exact")
        for value in (1.0, 2.0, 4.0):
            streaming_hist.add(value)
            exact_hist.add(value)

        overhead = publish_overhead(MetricsRegistry(), tracer=tracer, source_registry=source)
        snap = overhead.snapshot()
        assert snap["obs.overhead.trace.records"] == 25.0
        assert snap["obs.overhead.trace.spilled_records"] == 20.0
        assert snap["obs.overhead.trace.shards"] == 2.0
        assert snap["obs.overhead.trace.buffered"] == 5.0
        assert snap["obs.overhead.trace.spill_bytes"] > 0
        assert snap["obs.overhead.hist.metrics"] == 2.0
        assert snap["obs.overhead.hist.streaming_metrics"] == 1.0
        assert snap["obs.overhead.hist.buckets"] == 3.0  # three distinct buckets
        assert snap["obs.overhead.hist.samples"] == 3.0  # the exact metric's

    def test_watermark_leaf_published(self):
        with MemoryWatermark() as watermark:
            _ = [0] * 10000
            registry = publish_overhead(MetricsRegistry(), watermark=watermark)
        assert registry.snapshot()["obs.overhead.mem.peak_kb"] > 0
