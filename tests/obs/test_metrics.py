"""MetricsRegistry: counters, gauges, histograms, snapshot round-trip."""

import pytest

from repro.obs import MetricsRegistry, install_metrics, uninstall_metrics
from repro.sim.engine import Environment


class TestRegistry:
    def test_counter_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        a = registry.counter("dsa0.wq0.enqueued")
        b = registry.counter("dsa0.wq0.enqueued")
        assert a is b
        a.add()
        a.add(2.0)
        assert registry.snapshot()["dsa0.wq0.enqueued"] == 3.0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_gauge_time_weighted_mean(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("dsa0.wq1.occupancy")
        gauge.update(0.0, 0.0)
        gauge.update(10.0, 4.0)  # level 0 held for [0, 10)
        gauge.update(30.0, 0.0)  # level 4 held for [10, 30)
        snap = registry.snapshot()
        assert snap["dsa0.wq1.occupancy.max"] == 4.0
        assert snap["dsa0.wq1.occupancy.mean"] == pytest.approx((4.0 * 20.0) / 30.0)
        assert snap["dsa0.wq1.occupancy.level"] == 0.0

    def test_gauge_survives_time_going_backwards(self):
        # A shared registry sees updates from successive simulations
        # whose clocks restart at zero; the gauge restarts its epoch.
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.update(100.0, 8.0)
        gauge.update(5.0, 2.0)  # new simulation, earlier clock
        assert gauge.maximum == 8.0
        assert gauge.level == 2.0

    def test_histogram_snapshot_leaves(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        for value in [5.0, 1.0, 9.0, 3.0]:
            histogram.add(value)
        snap = registry.snapshot()
        assert snap["lat.count"] == 4.0
        assert snap["lat.p50"] == 3.0
        assert snap["lat.max"] == 9.0

    def test_snapshot_round_trip_is_flat_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b.count").add(1)
        registry.gauge("a.level_gauge").update(0.0, 2.0)
        snap = registry.snapshot()
        assert all(isinstance(key, str) for key in snap)
        assert all(isinstance(value, float) for value in snap.values())
        assert list(snap) == sorted(snap)

    def test_clear_empties_registry(self):
        registry = MetricsRegistry()
        registry.counter("x").add()
        registry.clear()
        assert registry.snapshot() == {}


class TestEnvironmentWiring:
    def test_every_environment_gets_a_private_registry(self):
        env_a, env_b = Environment(), Environment()
        assert env_a.metrics is not env_b.metrics

    def test_installed_registry_is_shared_even_when_empty(self):
        registry = MetricsRegistry()  # empty ⇒ falsy; must still be adopted
        install_metrics(registry)
        try:
            assert Environment().metrics is registry
        finally:
            uninstall_metrics()

    def test_components_publish_live_metrics(self):
        from repro.platform import spr_platform

        platform = spr_platform()
        snap = platform.env.metrics.snapshot()
        assert "dsa0.wq0.enqueued" in snap
        assert "dsa0.atc.misses" in snap
        assert "mem.iommu.translations" in snap
