"""StreamingHistogram: error bounds, merge exactness, API parity.

The acceptance bar for the streaming tier is differential: over
hundreds of random sample sets, streaming p50/p99 must agree with the
exact backend within the documented relative-error bound
(:data:`repro.obs.streaming.DEFAULT_RELATIVE_ERROR`, 1%).
"""

import random

import pytest

from repro.obs.streaming import DEFAULT_RELATIVE_ERROR, StreamingHistogram
from repro.sim.stats import Histogram as ExactHistogram


def _random_samples(rng: random.Random) -> list:
    """One random sample set from a randomly chosen shape and scale."""
    n = rng.randint(3, 400)
    shape = rng.choice(["uniform", "lognormal", "exponential", "bimodal"])
    scale = 10.0 ** rng.randint(-3, 6)
    if shape == "uniform":
        return [rng.uniform(0.1, 1.0) * scale for _ in range(n)]
    if shape == "lognormal":
        return [rng.lognormvariate(0.0, 1.5) * scale for _ in range(n)]
    if shape == "exponential":
        return [rng.expovariate(1.0) * scale + 1e-9 for _ in range(n)]
    return [
        (rng.uniform(1.0, 2.0) if rng.random() < 0.9 else rng.uniform(50.0, 100.0)) * scale
        for _ in range(n)
    ]


class TestDifferential:
    def test_percentiles_match_exact_within_bound_over_200_sets(self):
        """p50/p99 within the documented 1% bound on >=200 random sets."""
        rng = random.Random(0xD5A)
        sets = 0
        worst = 0.0
        while sets < 200:
            samples = _random_samples(rng)
            exact = ExactHistogram()
            streaming = StreamingHistogram()
            for value in samples:
                exact.add(value)
                streaming.add(value)
            for pct in (50.0, 99.0, 99.9):
                want = exact.percentile(pct)
                got = streaming.percentile(pct)
                err = abs(got - want) / want
                worst = max(worst, err)
                assert err <= DEFAULT_RELATIVE_ERROR, (
                    f"set {sets}: p{pct} streaming={got} exact={want} err={err:.4%}"
                )
            sets += 1
        assert worst <= DEFAULT_RELATIVE_ERROR

    def test_count_sum_min_max_are_exact(self):
        rng = random.Random(7)
        samples = [rng.lognormvariate(2.0, 1.0) for _ in range(5000)]
        hist = StreamingHistogram()
        hist.extend(samples)
        assert len(hist) == 5000
        assert hist.minimum == min(samples)
        assert hist.maximum == max(samples)
        assert hist.mean == pytest.approx(sum(samples) / 5000)


class TestBuckets:
    def test_memory_is_bounded_by_buckets_not_samples(self):
        rng = random.Random(1)
        hist = StreamingHistogram()
        for _ in range(200_000):
            hist.add(rng.lognormvariate(5.0, 2.0))
        # 200k samples spanning many decades land in O(100s) of buckets.
        assert hist.bucket_count < 3000
        assert len(hist) == 200_000

    def test_zero_and_negative_values(self):
        hist = StreamingHistogram()
        hist.extend([-10.0, -1.0, 0.0, 0.0, 1.0, 10.0])
        assert len(hist) == 6
        assert hist.minimum == -10.0
        assert hist.maximum == 10.0
        # Nearest-rank p50 over 6 samples is the 3rd: one of the zeros.
        assert hist.percentile(50) == 0.0
        assert hist.percentile(0) == -10.0
        assert hist.percentile(100) == 10.0

    def test_empty_summary_matches_exact_backend(self):
        assert StreamingHistogram().summary() == ExactHistogram().summary()

    def test_empty_percentile_raises_like_exact_backend(self):
        with pytest.raises(ValueError, match="empty histogram"):
            StreamingHistogram().percentile(99)

    def test_invalid_relative_error_rejected(self):
        with pytest.raises(ValueError):
            StreamingHistogram(relative_error=0.0)
        with pytest.raises(ValueError):
            StreamingHistogram(relative_error=1.0)

    def test_percentile_out_of_range_rejected(self):
        hist = StreamingHistogram()
        hist.add(1.0)
        with pytest.raises(ValueError):
            hist.percentile(101.0)


class TestMerge:
    def test_bucketwise_merge_equals_single_histogram(self):
        """Merging shards is exact: same buckets as one big histogram."""
        rng = random.Random(11)
        samples = [rng.lognormvariate(0.0, 2.0) for _ in range(10_000)]
        whole = StreamingHistogram()
        whole.extend(samples)
        left, right = StreamingHistogram(), StreamingHistogram()
        left.extend(samples[:3000])
        right.extend(samples[3000:])
        left.merge(right)
        merged, single = left.state(), whole.state()
        # Bucket counts merge exactly; only the float sum sees a
        # different addition order.
        assert merged["sum"] == pytest.approx(single.pop("sum"))
        merged.pop("sum")
        assert merged == single
        for pct in (1.0, 50.0, 99.0, 99.9):
            assert left.percentile(pct) == whole.percentile(pct)

    def test_merge_rejects_mismatched_alpha(self):
        with pytest.raises(ValueError):
            StreamingHistogram(0.01).merge(StreamingHistogram(0.02))

    def test_merge_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            StreamingHistogram().merge(ExactHistogram())


class TestState:
    def test_state_round_trip(self):
        rng = random.Random(3)
        hist = StreamingHistogram()
        hist.extend([rng.expovariate(0.1) for _ in range(1000)])
        clone = StreamingHistogram.from_state(hist.state())
        assert clone.state() == hist.state()
        assert clone.percentile(99) == hist.percentile(99)

    def test_state_survives_json_round_trip(self):
        import json

        hist = StreamingHistogram()
        hist.extend([0.5, 3.0, -2.0, 0.0, 1e6])
        clone = StreamingHistogram.from_state(json.loads(json.dumps(hist.state())))
        assert clone.summary() == hist.summary()

    def test_representative_error_bound_analytically(self):
        """Every bucket representative is within alpha of its bounds."""
        hist = StreamingHistogram()
        gamma = (1 + hist.alpha) / (1 - hist.alpha)
        for index in range(-50, 51):
            rep = 2.0 * gamma**index / (gamma + 1.0)
            low, high = gamma ** (index - 1), gamma**index
            # Worst case within the bucket (low, high]:
            worst = max(abs(rep - low) / low, abs(rep - high) / high)
            assert worst <= hist.alpha + 1e-12
