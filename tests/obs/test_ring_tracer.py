"""RingTracer: bounded memory, shard spill, lossless streaming export."""

import json
import os

from repro.obs import RingTracer, Tracer, chrome_trace_events, write_chrome_trace


def _fill(tracer, n, agent="pe0"):
    for i in range(n):
        tracer.complete(float(i), 1.0, "op", "execute", agent, 1, {"i": i})


class TestRing:
    def test_buffer_never_exceeds_capacity(self, tmp_path):
        tracer = RingTracer(capacity=100, spill_dir=str(tmp_path))
        for i in range(1000):
            tracer.instant(float(i), "tick", "cat")
            assert len(tracer.events) < 100
        assert len(tracer) == 1000
        assert tracer.spilled_records == 1000  # 10 full segments
        assert tracer.shard_count == 10
        assert tracer.spilled_bytes > 0

    def test_iter_records_replays_spill_then_tail_in_order(self, tmp_path):
        tracer = RingTracer(capacity=7, spill_dir=str(tmp_path))
        _fill(tracer, 25)
        records = list(tracer.iter_records())
        assert len(records) == 25
        assert [r[1] for r in records] == [float(i) for i in range(25)]
        # Args survive the JSONL round trip.
        assert records[0][6]["i"] == 0
        assert records[0][6]["_dur"] == 1.0

    def test_export_identical_to_unbounded_tracer(self, tmp_path):
        plain = Tracer()
        ring = RingTracer(capacity=16, spill_dir=str(tmp_path))
        for tracer in (plain, ring):
            tracer.begin(0.0, "a", "queue", "wq0", 1)
            _fill(tracer, 100)
            tracer.end(500.0, "a", "queue", "wq0", 1)
            tracer.instant(501.0, "done", "cat", "sim", 0, {"mode": "x"})
        assert chrome_trace_events(ring) == chrome_trace_events(plain)

    def test_write_chrome_trace_streams_valid_json(self, tmp_path):
        ring = RingTracer(capacity=8, spill_dir=str(tmp_path / "spill"))
        _fill(ring, 50)
        out = tmp_path / "trace.json"
        count = write_chrome_trace(ring, str(out))
        events = json.loads(out.read_text())
        assert count == len(events)
        # 50 records + 1 process_name metadata event.
        assert count == 51

    def test_absorb_remaps_tracks_through_the_ring(self, tmp_path):
        parent = RingTracer(capacity=4, spill_dir=str(tmp_path))
        parent.next_track()  # parent already handed out track 1
        worker = Tracer()
        worker.begin(0.0, "w", "execute", "pe0", worker.next_track())
        worker.instant(1.0, "d", "cat", "sim", 0)
        absorbed = parent.absorb(worker.events)
        assert absorbed == 2
        records = list(parent.iter_records())
        assert records[0][5] == 2  # worker track 1 shifted past parent's 1
        assert records[1][5] == 0  # DEFAULT_TRACK stays 0

    def test_clear_removes_shards(self, tmp_path):
        tracer = RingTracer(capacity=5, spill_dir=str(tmp_path))
        _fill(tracer, 23)
        assert tracer.shard_count > 0
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.spilled_records == 0
        assert not list(tmp_path.glob("*.jsonl"))
        # Recording keeps working after a clear; shard names restart.
        _fill(tracer, 6)
        assert len(tracer) == 6

    def test_cleanup_removes_owned_tempdir(self):
        tracer = RingTracer(capacity=3)
        _fill(tracer, 10)
        spill_dir = tracer.spill_dir
        assert os.path.isdir(spill_dir)
        tracer.cleanup()
        assert not os.path.exists(spill_dir)

    def test_non_json_args_degrade_to_strings_not_errors(self, tmp_path):
        class Odd:
            def __str__(self):
                return "odd!"

        tracer = RingTracer(capacity=2, spill_dir=str(tmp_path))
        tracer.instant(0.0, "a", "cat", args={"x": Odd()})
        tracer.instant(1.0, "b", "cat")  # triggers the spill
        records = list(tracer.iter_records())
        assert records[0][6]["x"] == "odd!"

    def test_capacity_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            RingTracer(capacity=0)
