"""Chrome-trace export format and the metrics text table."""

import json

from repro.obs import Tracer, chrome_trace_events, metrics_table, write_chrome_trace
from repro.obs import MetricsRegistry

#: Phases a Chrome trace-event array may contain (M = metadata).
VALID_PHASES = {"X", "B", "E", "i", "M"}


def _valid_chrome_trace(events):
    """Golden-format check: the structural contract of trace.json."""
    assert isinstance(events, list) and events
    for event in events:
        assert isinstance(event, dict)
        assert event["ph"] in VALID_PHASES
        assert isinstance(event["name"], str)
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "M":
            continue
        assert isinstance(event["ts"], (int, float))
        assert event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 0


def _sample_tracer():
    tracer = Tracer()
    track = tracer.next_track()
    tracer.begin(0.0, "submit", "submit", "core0", track)
    tracer.end(45.0, "submit", "submit", "core0", track)
    tracer.begin(45.0, "queued", "queue", "dsa0.wq0", track)
    tracer.end(60.0, "queued", "queue", "dsa0.wq0", track)
    tracer.complete(60.0, 12.0, "batch_fetch", "batch", "dsa0.pe0", track)
    tracer.instant(70.0, "page_fault", "translate", "dsa0.pe0", track, {"va": 4096})
    return tracer


def test_exported_file_is_valid_chrome_trace(tmp_path):
    tracer = _sample_tracer()
    path = tmp_path / "trace.json"
    count = write_chrome_trace(tracer, str(path))
    events = json.loads(path.read_text())
    assert len(events) == count
    _valid_chrome_trace(events)


def test_timestamps_are_microseconds():
    tracer = Tracer()
    tracer.instant(1500.0, "tick", "queue", "dsa0", 1)  # 1500 ns
    events = chrome_trace_events(tracer)
    instants = [event for event in events if event["ph"] == "i"]
    assert instants[0]["ts"] == 1.5

def test_agents_become_named_processes():
    events = chrome_trace_events(_sample_tracer())
    metadata = [event for event in events if event["ph"] == "M"]
    named = {event["args"]["name"] for event in metadata}
    assert named == {"core0", "dsa0.wq0", "dsa0.pe0"}
    # Distinct agents get distinct pids.
    assert len({event["pid"] for event in metadata}) == 3


def test_x_events_carry_duration_not_private_args():
    events = chrome_trace_events(_sample_tracer())
    complete = [event for event in events if event["ph"] == "X"][0]
    assert complete["dur"] == 12.0 * 1e-3
    assert "_dur" not in complete.get("args", {})


def test_metrics_table_renders_snapshot():
    registry = MetricsRegistry()
    registry.counter("dsa0.wq0.enqueued").add(42)
    registry.gauge("dsa0.wq0.occupancy").update(0.0, 3.0)
    rendered = metrics_table(registry).render()
    assert "dsa0.wq0.enqueued" in rendered
    assert "42" in rendered
    assert "dsa0.wq0.occupancy.level" in rendered
