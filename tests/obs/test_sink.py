"""ResultSink: streamed JSONL lines, shard splicing, summary merge."""

import json

import pytest

from repro.analysis.series import Series
from repro.experiments.base import ExperimentResult
from repro.obs import ResultSink, install_sink, installed_sink, uninstall_sink


def _lines(path):
    with open(path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestSink:
    def test_lines_are_flushed_as_written(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = ResultSink(path)
        sink.series("fig2", "sync:MEMMOVE", [(64, 0.5), (4096, 2.0)])
        # Readable mid-run, before close: each line is flushed.
        assert _lines(path) == [
            {
                "kind": "series",
                "exp": "fig2",
                "label": "sync:MEMMOVE",
                "points": [[64, 0.5], [4096, 2.0]],
            }
        ]
        sink.anchor("fig2", "crossover", "~4KB", "4KB", True)
        sink.result("fig2", ok=True, cached=False, wall=1.5)
        sink.close()
        assert [l["kind"] for l in _lines(path)] == ["series", "anchor", "result"]

    def test_write_after_close_raises(self, tmp_path):
        sink = ResultSink(tmp_path / "run.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.write("series", exp="x")

    def test_absorb_file_splices_lines_and_tolerates_missing_shard(self, tmp_path):
        shard = ResultSink(tmp_path / "shard.jsonl")
        shard.series("fig5", "lat", [(1, 2)])
        shard.close()
        main = ResultSink(tmp_path / "run.jsonl")
        main.result("fig2", ok=True, cached=False, wall=0.1)
        assert main.absorb_file(tmp_path / "shard.jsonl") == 1
        assert main.absorb_file(tmp_path / "no-such-shard.jsonl") == 0
        main.close()
        assert [(l["kind"], l["exp"]) for l in _lines(tmp_path / "run.jsonl")] == [
            ("result", "fig2"),
            ("series", "fig5"),
        ]

    def test_finalize_merges_summary(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = ResultSink(path)
        sink.series("fig2", "a", [(1, 1)])
        sink.series("fig2", "b", [(1, 1)])
        sink.anchor("fig2", "x", "e", "m", True)
        sink.anchor("fig2", "y", "e", "m", False)
        sink.result("fig2", ok=True, cached=False, wall=2.0)
        sink.result("fig5", ok=True, cached=True, wall=0.0)
        summary = sink.finalize()
        assert summary["lines"] == 6
        assert summary["series"] == 2
        assert summary["anchors"] == 2
        assert summary["anchors_held"] == 1
        assert summary["wall_s"] == pytest.approx(2.0)
        assert summary["experiments"]["fig2"]["series"] == 2
        assert summary["experiments"]["fig5"]["cached"] is True
        on_disk = json.loads((tmp_path / "run.jsonl.summary.json").read_text())
        assert on_disk == json.loads(json.dumps(summary))


class TestInstalledSink:
    def test_experiment_result_streams_series_and_anchors(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = ResultSink(path)
        install_sink(sink)
        try:
            result = ExperimentResult(exp_id="figX", title="t", description="d")
            series = Series(label="s")
            series.add(1.0, 2.0)
            result.add_series(series)
            result.check("anchor", "paper", "measured", True)
        finally:
            uninstall_sink()
            sink.close()
        lines = _lines(path)
        assert [l["kind"] for l in lines] == ["series", "anchor"]
        assert lines[0]["exp"] == "figX"
        assert lines[1]["holds"] is True
        # Local accumulation still works alongside the stream.
        assert "s" in result.series
        assert result.anchors[0].holds

    def test_no_sink_installed_is_a_noop(self):
        assert installed_sink() is None
        result = ExperimentResult(exp_id="figY", title="t", description="d")
        series = Series(label="s")
        series.add(1.0, 2.0)
        result.add_series(series)  # must not raise
        assert "s" in result.series
