"""Tests for the core power/energy model (§4.4 extension)."""

import pytest

from repro.cpu.core import CpuCore, CycleCategory
from repro.cpu.power import CoreEnergyMeter, CorePowerParams
from repro.sim import Environment


@pytest.fixture
def core():
    return CpuCore(Environment())


class TestParams:
    def test_defaults_valid(self):
        CorePowerParams().validate()

    def test_ordering_enforced(self):
        with pytest.raises(ValueError, match="ordering"):
            CorePowerParams(umwait_w=9.0).validate()

    def test_positive_required(self):
        with pytest.raises(ValueError):
            CorePowerParams(idle_w=0.0).validate()


class TestEnergyMeter:
    def test_busy_second_costs_busy_watts(self, core):
        meter = CoreEnergyMeter()
        core.account(CycleCategory.BUSY, 1e9)  # one second
        assert meter.energy_joules(core) == pytest.approx(meter.params.busy_w)

    def test_umwait_cheaper_than_spin(self, core):
        meter = CoreEnergyMeter()
        spin_core = CpuCore(Environment())
        core.account(CycleCategory.UMWAIT, 1e9)
        spin_core.account(CycleCategory.WAIT_SPIN, 1e9)
        assert meter.energy_joules(core) < meter.energy_joules(spin_core)

    def test_average_power_weighted(self, core):
        meter = CoreEnergyMeter()
        core.account(CycleCategory.BUSY, 5e8)
        core.account(CycleCategory.UMWAIT, 5e8)
        expected = (meter.params.busy_w + meter.params.umwait_w) / 2
        assert meter.average_power(core) == pytest.approx(expected)

    def test_average_power_of_idle_core_is_zero(self, core):
        assert CoreEnergyMeter().average_power(core) == 0.0

    def test_breakdown_only_nonzero_categories(self, core):
        core.account(CycleCategory.BUSY, 100.0)
        breakdown = CoreEnergyMeter().breakdown(core)
        assert set(breakdown) == {"busy"}


class TestOffloadEnergySavings:
    def test_offload_with_umwait_saves_energy_vs_software(self):
        """The §4.4 claim end-to-end: same payload, less core energy."""
        from repro.runtime.wait import WaitMode
        from repro.workloads.microbench import (
            MicrobenchConfig,
            run_dsa_microbench,
            run_software_microbench,
        )

        meter = CoreEnergyMeter()
        cfg = MicrobenchConfig(
            transfer_size=64 * 1024,
            queue_depth=1,
            iterations=30,
            wait_mode=WaitMode.UMWAIT,
        )
        offload = run_dsa_microbench(cfg)
        software = run_software_microbench(cfg)
        assert meter.energy_joules(offload.cores[0]) < meter.energy_joules(
            software.cores[0]
        )
