"""Unit tests for the software kernel cost models."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu.instructions import InstructionCosts
from repro.cpu.swlib import DEFAULT_KERNELS, NT_FILL, SoftwareKernels, SwKernelParams
from repro.dsa.opcodes import Opcode
from repro.mem.cache import SharedLLC

KB = 1024
MB = 1024 * KB


class TestKernelParams:
    def test_time_is_base_plus_linear(self):
        params = SwKernelParams(base_ns=50.0, dram_bandwidth=10.0, llc_bandwidth=40.0)
        assert params.time(1000) == pytest.approx(150.0)
        assert params.time(1000, in_llc=True) == pytest.approx(75.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SwKernelParams(1.0, 1.0, 1.0).time(-1)

    @given(st.integers(0, 1 << 24), st.integers(1, 1 << 24))
    def test_monotonic_in_size(self, a, b):
        params = DEFAULT_KERNELS[Opcode.MEMMOVE]
        small, large = sorted((a, a + b))
        assert params.time(small) <= params.time(large)


class TestSoftwareKernels:
    def test_every_analysed_opcode_has_a_kernel(self):
        kernels = SoftwareKernels()
        for opcode in (
            Opcode.MEMMOVE,
            Opcode.DUALCAST,
            Opcode.FILL,
            Opcode.COMPARE,
            Opcode.COMPARE_PATTERN,
            Opcode.CRCGEN,
            Opcode.COPY_CRC,
            Opcode.DIF_CHECK,
            Opcode.DIF_INSERT,
        ):
            assert kernels.time(opcode, 4 * KB) > 0

    def test_unknown_opcode_raises(self):
        with pytest.raises(KeyError):
            SoftwareKernels().time(Opcode.NOOP, 100)

    def test_llc_resident_faster(self):
        kernels = SoftwareKernels()
        assert kernels.memcpy_ns(64 * KB, in_llc=True) < kernels.memcpy_ns(64 * KB)

    def test_large_copy_bandwidth_near_12(self):
        kernels = SoftwareKernels()
        assert kernels.throughput(Opcode.MEMMOVE, 4 * MB) == pytest.approx(12.0, rel=0.02)

    def test_nt_fill_faster_than_allocating_fill(self):
        kernels = SoftwareKernels()
        assert kernels.memset_ns(1 * MB, non_temporal=True) < kernels.memset_ns(1 * MB)

    def test_nt_fill_does_not_pollute(self):
        assert NT_FILL.cache_footprint_factor == 0.0

    def test_override_kernel(self):
        custom = SoftwareKernels({Opcode.MEMMOVE: SwKernelParams(1.0, 100.0, 100.0)})
        assert custom.memcpy_ns(1000) == pytest.approx(11.0)

    def test_memcmp_slower_than_memcpy_per_byte(self):
        # memcmp streams two sources from DRAM.
        kernels = SoftwareKernels()
        assert kernels.memcmp_ns(1 * MB) > kernels.memcpy_ns(1 * MB)


class TestPollution:
    def test_memcpy_pollutes_double(self):
        kernels = SoftwareKernels()
        llc = SharedLLC(size=100 * MB, ways=10, ddio_ways=2)
        inserted = kernels.pollute(llc, "core0", Opcode.MEMMOVE, 1 * MB)
        assert inserted == pytest.approx(2 * MB)
        assert llc.occupancy("core0") == pytest.approx(2 * MB)

    def test_flush_does_not_pollute(self):
        kernels = SoftwareKernels()
        llc = SharedLLC(size=100 * MB, ways=10, ddio_ways=2)
        assert kernels.pollute(llc, "core0", Opcode.CACHE_FLUSH, 1 * MB) == 0.0


class TestInstructionCosts:
    def test_defaults_valid(self):
        InstructionCosts().validate()

    def test_enqcmd_must_exceed_movdir(self):
        import dataclasses

        bad = dataclasses.replace(InstructionCosts(), enqcmd_ns=10.0)
        with pytest.raises(ValueError, match="non-posted"):
            bad.validate()

    def test_positive_costs_required(self):
        import dataclasses

        bad = dataclasses.replace(InstructionCosts(), poll_check_ns=0.0)
        with pytest.raises(ValueError):
            bad.validate()
