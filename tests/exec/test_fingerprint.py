"""Source-fingerprint tests: closure membership and invalidation."""

from pathlib import Path

import pytest

from repro.exec.fingerprint import fingerprint, source_closure
from repro.experiments.registry import module_path


def _write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


@pytest.fixture
def fake_tree(tmp_path):
    """A miniature ``repro`` package with one experiment and one model."""
    _write(tmp_path, "repro/__init__.py", "")
    _write(tmp_path, "repro/experiments/__init__.py", "")
    _write(
        tmp_path,
        "repro/experiments/figx.py",
        "from repro.models.latency import copy_ns\n"
        "from repro.models import tuning\n"
        "def run(quick=False):\n"
        "    return copy_ns(1) + tuning.KNOB\n",
    )
    _write(tmp_path, "repro/models/__init__.py", "")
    _write(
        tmp_path,
        "repro/models/latency.py",
        "import repro.models.tuning\n"
        "def copy_ns(size):\n"
        "    return size * 2\n",
    )
    _write(tmp_path, "repro/models/tuning.py", "KNOB = 7\n")
    _write(tmp_path, "repro/models/unrelated.py", "UNUSED = 1\n")
    return tmp_path


class TestSourceClosure:
    def test_includes_experiment_imports_and_package_inits(self, fake_tree):
        closure = source_closure("repro.experiments.figx", package_root=fake_tree)
        assert "repro.experiments.figx" in closure
        assert "repro.models.latency" in closure
        assert "repro.models.tuning" in closure  # transitive
        assert "repro.models" in closure  # ancestor __init__
        assert "repro" in closure
        assert "repro.models.unrelated" not in closure

    def test_from_import_of_plain_attr_keeps_module(self, fake_tree):
        # ``from repro.models.latency import copy_ns``: copy_ns is not a
        # module, so only repro.models.latency itself joins the closure.
        closure = source_closure("repro.experiments.figx", package_root=fake_tree)
        assert "repro.models.latency.copy_ns" not in closure

    def test_unknown_module_raises(self, fake_tree):
        with pytest.raises(ModuleNotFoundError):
            source_closure("repro.experiments.nope", package_root=fake_tree)


class TestFingerprint:
    def test_stable_across_calls(self, fake_tree):
        first = fingerprint("repro.experiments.figx", package_root=fake_tree)
        second = fingerprint("repro.experiments.figx", package_root=fake_tree)
        assert first == second

    def test_changes_when_experiment_module_changes(self, fake_tree):
        before = fingerprint("repro.experiments.figx", package_root=fake_tree)
        figx = fake_tree / "repro/experiments/figx.py"
        figx.write_text(figx.read_text() + "\n# tweak\n", encoding="utf-8")
        assert fingerprint("repro.experiments.figx", package_root=fake_tree) != before

    def test_changes_when_imported_model_source_changes(self, fake_tree):
        before = fingerprint("repro.experiments.figx", package_root=fake_tree)
        _write(fake_tree, "repro/models/latency.py", "def copy_ns(size):\n    return size * 3\n")
        assert fingerprint("repro.experiments.figx", package_root=fake_tree) != before

    def test_changes_when_transitive_import_changes(self, fake_tree):
        before = fingerprint("repro.experiments.figx", package_root=fake_tree)
        _write(fake_tree, "repro/models/tuning.py", "KNOB = 8\n")
        assert fingerprint("repro.experiments.figx", package_root=fake_tree) != before

    def test_unchanged_when_unrelated_module_changes(self, fake_tree):
        before = fingerprint("repro.experiments.figx", package_root=fake_tree)
        _write(fake_tree, "repro/models/unrelated.py", "UNUSED = 2\n")
        assert fingerprint("repro.experiments.figx", package_root=fake_tree) == before


class TestRealTree:
    def test_every_registered_experiment_fingerprints(self):
        from repro.experiments.registry import all_experiments

        digests = {fingerprint(module_path(exp_id)) for exp_id in all_experiments()}
        # Different experiments import different model subsets, so the
        # digests cannot all collapse to one value.
        assert len(digests) > 1

    def test_fig2_closure_reaches_the_microbench_model(self):
        closure = source_closure(module_path("fig2"))
        assert "repro.workloads.microbench" in closure
        assert "repro.sim.engine" in closure
