"""Cache variant salting: canonical builder and collision freedom.

The result cache keys on ``(exp_id, quick, seed, variant)``; the variant
string is the only thing separating results produced under different
runtime flags (histogram backend, fidelity tier). These tests pin the
canonical builder — deterministic ordering, default elision — and prove
that no two distinct flag combinations ever share a cache entry.
"""

import itertools

import pytest

from repro.exec.cache import ResultCache, variant_string
from repro.exec.runner import ParallelRunner


class TestVariantString:
    def test_empty_for_no_flags(self):
        assert variant_string() == ""

    def test_defaults_are_elided(self):
        # The default configuration must map to the pre-variant key ""
        # so existing caches stay valid.
        assert variant_string(fidelity="des", hist="auto") == ""
        assert variant_string(fidelity=None, hist=None) == ""

    def test_keys_are_sorted(self):
        assert (
            variant_string(hist="exact", fidelity="auto")
            == variant_string(fidelity="auto", hist="exact")
            == "fidelity=auto,hist=exact"
        )

    def test_bools_normalise_to_ints(self):
        assert variant_string(trace=True) == "trace=1"
        assert variant_string(trace=False) == "trace=0"

    def test_separator_characters_rejected(self):
        with pytest.raises(ValueError):
            variant_string(**{"bad=key": 1})
        with pytest.raises(ValueError):
            variant_string(hist="a,b")

    def test_distinct_flag_combos_never_collide(self):
        fidelities = [None, "auto", "analytical"]
        hists = [None, "exact", "streaming"]
        calendars = [None, "wheel", "auto"]
        traces = [False, True]
        combos = list(itertools.product(fidelities, hists, calendars, traces))
        strings = [
            variant_string(fidelity=f, hist=h, calendar=c, trace=t)
            for f, h, c, t in combos
        ]
        assert len(set(strings)) == len(combos)

    def test_default_calendar_is_elided(self):
        # heap is the byte-identical default; it must map to the
        # pre-calendar key "" so existing caches stay valid.
        assert variant_string(calendar="heap") == ""
        assert variant_string(calendar=None) == ""

    def test_calendar_salts_the_variant(self):
        assert variant_string(calendar="wheel") == "calendar=wheel"
        assert variant_string(calendar="auto") == "calendar=auto"


class TestRunnerVariant:
    def test_default_runner_uses_legacy_empty_variant(self):
        assert ParallelRunner(jobs=1)._cache_variant == ""

    def test_fidelity_flag_salts_the_variant(self):
        assert ParallelRunner(jobs=1, fidelity="auto")._cache_variant == "fidelity=auto"

    def test_explicit_des_matches_default(self):
        assert ParallelRunner(jobs=1, fidelity="des")._cache_variant == ""

    def test_combined_flags(self):
        runner = ParallelRunner(jobs=1, hist_backend="streaming", fidelity="auto")
        assert runner._cache_variant == "fidelity=auto,hist=streaming"

    def test_calendar_flag_salts_the_variant(self):
        assert ParallelRunner(jobs=1, calendar="wheel")._cache_variant == "calendar=wheel"
        assert ParallelRunner(jobs=1, calendar="heap")._cache_variant == ""


class TestCacheKeying:
    @pytest.fixture
    def cache(self, tmp_path):
        return ResultCache(root=tmp_path / "cache")

    def test_variant_separates_entries(self, cache):
        base = cache.key("fig2", quick=False, seed=1)
        salted = cache.key("fig2", quick=False, seed=1, variant="fidelity=auto")
        assert base != salted

    def test_same_variant_same_key(self, cache):
        a = cache.key("fig2", quick=True, seed=7, variant="fidelity=auto")
        b = cache.key("fig2", quick=True, seed=7, variant="fidelity=auto")
        assert a == b
