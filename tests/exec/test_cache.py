"""Result-cache tests: keying, round-trips, corruption, maintenance."""

import pickle

import pytest

from repro.exec.cache import ResultCache
from repro.experiments.base import ExperimentResult


def _result(exp_id="fig4"):
    result = ExperimentResult(exp_id, "Title", "Desc")
    result.check("anchor", "paper", "measured", True)
    result.metrics = {"a.b": 1.0}
    return result


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cache")


class TestKeying:
    def test_key_is_stable(self, cache):
        assert cache.key("fig4", True, 1) == cache.key("fig4", True, 1)

    def test_key_varies_with_inputs(self, cache):
        base = cache.key("fig4", True, 1)
        assert cache.key("fig4", False, 1) != base
        assert cache.key("fig4", True, 2) != base
        assert cache.key("fig8", True, 1) != base

    def test_key_varies_with_source_fingerprint(self, cache, monkeypatch):
        base = cache.key("fig4", True, 1)
        monkeypatch.setattr("repro.exec.cache.fingerprint", lambda module: "changed")
        assert cache.key("fig4", True, 1) != base

    def test_unknown_experiment_raises(self, cache):
        with pytest.raises(KeyError, match="unknown experiment"):
            cache.key("fig99", True, 1)


class TestRoundTrip:
    def test_put_then_get(self, cache):
        stored = _result()
        cache.put("fig4", True, 1, stored, wall=2.5)
        hit = cache.get("fig4", True, 1)
        assert hit is not None
        assert hit.wall == 2.5
        assert hit.result.render() == stored.render()
        assert hit.result.metrics == {"a.b": 1.0}

    def test_miss_on_empty_cache(self, cache):
        assert cache.get("fig4", True, 1) is None

    def test_miss_on_different_flags(self, cache):
        cache.put("fig4", True, 1, _result(), wall=1.0)
        assert cache.get("fig4", False, 1) is None
        assert cache.get("fig4", True, 2) is None

    def test_env_var_relocates_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert ResultCache().root == tmp_path / "elsewhere"


class TestCorruption:
    def test_truncated_entry_is_a_miss_and_removed(self, cache):
        path = cache.put("fig4", True, 1, _result(), wall=1.0)
        path.write_bytes(b"not a pickle")
        assert cache.get("fig4", True, 1) is None
        assert not path.exists()

    def test_wrong_payload_type_is_a_miss(self, cache):
        path = cache.put("fig4", True, 1, _result(), wall=1.0)
        with path.open("rb") as fh:
            payload = pickle.load(fh)
        payload["result"] = "not a result"
        with path.open("wb") as fh:
            pickle.dump(payload, fh)
        assert cache.get("fig4", True, 1) is None


class TestMaintenance:
    def test_stats_counts_entries_and_saved_wall(self, cache):
        cache.put("fig4", True, 1, _result("fig4"), wall=2.0)
        cache.put("fig8", True, 1, _result("fig8"), wall=3.0)
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert stats.saved_wall_s == pytest.approx(5.0)
        assert stats.by_experiment == {"fig4": 1, "fig8": 1}

    def test_clear_removes_everything(self, cache):
        cache.put("fig4", True, 1, _result(), wall=1.0)
        assert cache.clear() == 1
        assert cache.entries() == []
        assert cache.stats().entries == 0

    def test_stats_on_missing_root(self, tmp_path):
        stats = ResultCache(root=tmp_path / "never-created").stats()
        assert stats.entries == 0
