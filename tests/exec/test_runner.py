"""ParallelRunner tests: determinism, caching, merge, failure paths.

The experiments used here (fig4, fig8, fig12) are the cheapest
registered ones (tens of milliseconds in quick mode), so spinning up a
real worker pool stays fast.
"""

import sys
import types

import numpy as np
import pytest

from repro.exec import ParallelRunner, ResultCache
from repro.experiments import registry
from repro.obs import (
    MetricsRegistry,
    Tracer,
    install_metrics,
    install_tracer,
    uninstall_metrics,
    uninstall_tracer,
)
from repro.sim.rng import DEFAULT_SEED, install_seed, installed_seed, make_rng, uninstall_seed

CHEAP = ["fig4", "fig12"]


@pytest.fixture(autouse=True)
def _clean_obs():
    yield
    uninstall_metrics()
    uninstall_tracer()
    uninstall_seed()


class TestDeterminism:
    def test_parallel_render_matches_serial_byte_for_byte(self):
        serial = ParallelRunner(jobs=1, quick=True).run(CHEAP)
        parallel = ParallelRunner(jobs=2, quick=True).run(CHEAP)
        assert [o.exp_id for o in parallel] == CHEAP  # request order kept
        for ser, par in zip(serial, parallel):
            assert ser.ok and par.ok
            assert ser.result.render() == par.result.render()
            assert ser.result.metrics == par.result.metrics

    def test_explicit_seed_matches_across_modes(self):
        serial = ParallelRunner(jobs=1, quick=True, seed=7).run(["fig4"])[0]
        parallel = ParallelRunner(jobs=2, quick=True, seed=7).run(["fig4", "fig12"])[0]
        assert serial.result.render() == parallel.result.render()


class TestSeedPlumbing:
    def test_install_seed_changes_default_rng(self):
        baseline = make_rng().integers(0, 2**31)
        install_seed(12345)
        assert installed_seed() == 12345
        changed = make_rng().integers(0, 2**31)
        uninstall_seed()
        assert installed_seed() == DEFAULT_SEED
        assert make_rng().integers(0, 2**31) == baseline
        assert changed != baseline

    def test_explicit_seed_still_wins(self):
        install_seed(12345)
        try:
            a = make_rng(9).integers(0, 2**31)
        finally:
            uninstall_seed()
        assert a == make_rng(9).integers(0, 2**31)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            install_seed("abc")

    def test_local_runner_restores_seed(self):
        ParallelRunner(jobs=1, quick=True, seed=99).run(["fig12"])
        assert installed_seed() == DEFAULT_SEED


class TestCaching:
    def test_second_run_is_served_from_cache(self, tmp_path):
        cache = ResultCache(root=tmp_path / "c")
        cold = ParallelRunner(jobs=1, quick=True, cache=cache).run(CHEAP)
        warm = ParallelRunner(jobs=1, quick=True, cache=cache).run(CHEAP)
        assert all(not o.cached for o in cold)
        assert all(o.cached for o in warm)
        for c, w in zip(cold, warm):
            assert c.result.render() == w.result.render()

    def test_parallel_warm_cache_skips_the_pool(self, tmp_path):
        cache = ResultCache(root=tmp_path / "c")
        ParallelRunner(jobs=2, quick=True, cache=cache).run(CHEAP)
        warm = ParallelRunner(jobs=2, quick=True, cache=cache).run(CHEAP)
        assert all(o.cached for o in warm)

    def test_no_cache_bypasses_reads_and_writes(self, tmp_path):
        cache = ResultCache(root=tmp_path / "c")
        ParallelRunner(jobs=1, quick=True, cache=cache).run(["fig12"])
        again = ParallelRunner(jobs=1, quick=True, cache=None).run(["fig12"])
        assert not again[0].cached
        assert len(cache.entries()) == 1  # untouched by the no-cache run

    def test_quick_and_seed_partition_the_cache(self, tmp_path):
        cache = ResultCache(root=tmp_path / "c")
        ParallelRunner(jobs=1, quick=True, seed=1, cache=cache).run(["fig12"])
        other = ParallelRunner(jobs=1, quick=True, seed=2, cache=cache).run(["fig12"])
        assert not other[0].cached

    def test_tracing_bypasses_cache_reads(self, tmp_path):
        cache = ResultCache(root=tmp_path / "c")
        ParallelRunner(jobs=1, quick=True, cache=cache).run(["fig4"])
        tracer = Tracer()
        install_tracer(tracer)
        traced = ParallelRunner(jobs=1, quick=True, cache=cache, trace=True).run(["fig4"])
        assert not traced[0].cached
        assert len(tracer.events) > 0


class TestObservabilityMerge:
    def test_worker_trace_events_fold_into_parent(self):
        tracer = Tracer()
        install_tracer(tracer)
        ParallelRunner(jobs=2, quick=True, trace=True).run(CHEAP)
        assert len(tracer.events) > 0
        # Worker tracks were remapped, not collapsed: the merged trace
        # keeps more than one non-default track.
        tracks = {record[5] for record in tracer.events if record[5]}
        assert len(tracks) > 1

    def test_worker_metrics_fold_into_parent_registry(self):
        registry_ = MetricsRegistry()
        install_metrics(registry_)
        outcomes = ParallelRunner(jobs=2, quick=True).run(CHEAP)
        # Serial semantics: parent registry holds the *last* experiment's
        # snapshot values.
        assert len(registry_) > 0
        assert registry_.snapshot() == outcomes[-1].result.metrics

    def test_results_carry_metrics_snapshots_from_workers(self):
        outcomes = ParallelRunner(jobs=2, quick=True).run(CHEAP)
        for outcome in outcomes:
            assert outcome.result.metrics


class TestFailurePaths:
    def _register_boom(self, monkeypatch, fail=True):
        module = types.ModuleType("repro_test_boom")

        def run(quick=False):
            from repro.obs import installed_metrics

            registry_ = installed_metrics()
            if registry_ is not None:
                registry_.counter("boom.partial").add(41)
            raise RuntimeError("boom mid-run")

        module.run = run
        monkeypatch.setitem(sys.modules, "repro_test_boom", module)
        monkeypatch.setitem(registry._EXPERIMENTS, "boom", "repro_test_boom")

    def test_failed_experiment_reports_error_and_run_continues(self, monkeypatch):
        self._register_boom(monkeypatch)
        outcomes = ParallelRunner(jobs=1, quick=True).run(["boom", "fig12"])
        assert not outcomes[0].ok
        assert "boom mid-run" in outcomes[0].error
        assert outcomes[1].ok

    def test_failure_is_never_cached(self, monkeypatch, tmp_path):
        self._register_boom(monkeypatch)
        cache = ResultCache(root=tmp_path / "c")
        ParallelRunner(jobs=1, quick=True, cache=cache).run(["boom"])
        assert cache.entries() == []
