"""Additional coverage: 16-byte patterns, platform edges, misc results."""

import numpy as np
import pytest

from repro.dsa.descriptor import WorkDescriptor
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import Opcode
from repro.dsa.ops import execute
from repro.mem import AddressSpace
from repro.platform import spr_platform

KB = 1024


class TestWidePatterns:
    def _space_with_dst(self, size=64):
        space = AddressSpace()
        return space, space.allocate(size, backed=True)

    def test_16_byte_fill(self):
        space, dst = self._space_with_dst(64)
        descriptor = WorkDescriptor(
            Opcode.FILL,
            dst=dst.va,
            size=64,
            pattern=0x0807060504030201,
            pattern2=0x100F0E0D0C0B0A09,
            pattern_bytes=16,
        )
        assert execute(descriptor, space).status == StatusCode.SUCCESS
        expected = np.tile(np.arange(1, 17, dtype=np.uint8), 4)
        assert np.array_equal(dst.data, expected)

    def test_16_byte_compare_pattern_roundtrip(self):
        space, dst = self._space_with_dst(48)
        fill = WorkDescriptor(
            Opcode.FILL, dst=dst.va, size=48,
            pattern=0xAAAAAAAAAAAAAAAA, pattern2=0xBBBBBBBBBBBBBBBB,
            pattern_bytes=16,
        )
        execute(fill, space)
        check = WorkDescriptor(
            Opcode.COMPARE_PATTERN, src=dst.va, size=48,
            pattern=0xAAAAAAAAAAAAAAAA, pattern2=0xBBBBBBBBBBBBBBBB,
            pattern_bytes=16,
        )
        assert execute(check, space).status == StatusCode.SUCCESS
        # An 8-byte view of the same data must mismatch.
        check8 = WorkDescriptor(
            Opcode.COMPARE_PATTERN, src=dst.va, size=48,
            pattern=0xAAAAAAAAAAAAAAAA, pattern_bytes=8,
        )
        assert execute(check8, space).status == StatusCode.SUCCESS_WITH_FALSE_PREDICATE

    def test_invalid_pattern_width_rejected(self):
        space, dst = self._space_with_dst()
        descriptor = WorkDescriptor(
            Opcode.FILL, dst=dst.va, size=64, pattern_bytes=12
        )
        assert execute(descriptor, space).status == StatusCode.INVALID_FLAGS

    def test_default_is_8_bytes(self):
        assert WorkDescriptor(Opcode.FILL, dst=0x1000, size=8).pattern_bytes == 8


class TestPlatformEdges:
    def test_duplicate_device_name_rejected(self):
        from repro.runtime.driver import DriverError

        platform = spr_platform()
        with pytest.raises(DriverError, match="already registered"):
            platform.add_device("dsa0")

    def test_run_until(self):
        platform = spr_platform()
        platform.run(until=100.0)
        assert platform.env.now == 100.0

    def test_icx_has_no_dsa_devices(self):
        from repro.platform import icx_platform

        assert not icx_platform().driver.devices


class TestResultHelpers:
    def test_spdk_throughput_property(self):
        from repro.workloads.spdk import DigestMode, SpdkConfig, run_spdk_target

        result = run_spdk_target(
            SpdkConfig(digest=DigestMode.NONE, target_cores=2, queue_depth=16, ios=100)
        )
        assert result.throughput == pytest.approx(
            result.iops * result.config.io_size / 1e9, rel=1e-6
        )

    def test_vhost_stall_accounting_nonnegative(self):
        from repro.workloads.vhost import VhostConfig, run_vhost

        result = run_vhost(VhostConfig(packet_size=1518, bursts=20, use_dsa=True))
        assert result.dsa_stall_ns >= 0.0

    def test_microbench_umwait_fraction_zero_for_spin(self):
        from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

        result = run_dsa_microbench(
            MicrobenchConfig(transfer_size=4 * KB, queue_depth=4, iterations=10)
        )
        assert result.umwait_fraction() == 0.0


class TestConditionValues:
    def test_all_of_value_maps_events(self):
        from repro.sim import Environment

        env = Environment()
        seen = {}

        def proc(env):
            a = env.timeout(1.0, value="a")
            b = env.timeout(2.0, value="b")
            values = yield env.all_of([a, b])
            seen.update({k.value: v for k, v in zip([a, b], [values[a], values[b]])})

        env.process(proc(env))
        env.run()
        assert seen == {"a": "a", "b": "b"}

    def test_any_of_returns_first(self):
        from repro.sim import Environment

        env = Environment()
        out = {}

        def proc(env):
            fast = env.timeout(1.0, value="fast")
            slow = env.timeout(5.0, value="slow")
            values = yield env.any_of([fast, slow])
            out["keys"] = [e.value for e in values]

        env.process(proc(env))
        env.run()
        assert out["keys"] == ["fast"]
