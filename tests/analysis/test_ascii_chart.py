"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.ascii_chart import MARKS, render_chart, render_experiment_charts
from repro.analysis.series import Series
from repro.experiments.base import ExperimentResult


def rising(label="up"):
    return Series(label, points=[(1, 1.0), (10, 5.0), (100, 10.0)])


class TestRenderChart:
    def test_contains_marks_and_legend(self):
        chart = render_chart([rising()])
        assert MARKS[0] in chart
        assert "up" in chart

    def test_multiple_series_distinct_marks(self):
        chart = render_chart([rising("a"), Series("b", points=[(1, 2.0), (100, 3.0)])])
        assert MARKS[0] in chart and MARKS[1] in chart
        assert "a" in chart and "b" in chart

    def test_axis_labels_present(self):
        chart = render_chart([rising()])
        assert "10" in chart  # y max
        assert "100" in chart  # x max

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="nothing to plot"):
            render_chart([Series("empty")])

    def test_too_small_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            render_chart([rising()], width=4, height=2)

    def test_log_x_disabled_for_nonpositive(self):
        series = Series("s", points=[(0, 1.0), (10, 2.0)])
        chart = render_chart([series], log_x=True)  # silently falls back
        assert MARKS[0] in chart

    def test_dimensions(self):
        chart = render_chart([rising()], width=40, height=10, title="T")
        lines = chart.splitlines()
        # title + 10 rows + axis + x labels + legend
        assert len(lines) == 14
        assert lines[0] == "T"

    def test_flat_series_renders(self):
        flat = Series("flat", points=[(1, 5.0), (2, 5.0)])
        assert MARKS[0] in render_chart([flat], log_x=False)


class TestExperimentCharts:
    def test_groups_by_prefix(self):
        result = ExperimentResult("x", "t", "d")
        result.add_series(Series("sync:a", points=[(1, 1.0), (2, 2.0)]))
        result.add_series(Series("sync:b", points=[(1, 2.0), (2, 3.0)]))
        result.add_series(Series("async:a", points=[(1, 3.0), (2, 4.0)]))
        output = render_experiment_charts(result)
        assert "x [sync]" in output
        assert "x [async]" in output

    def test_no_series_message(self):
        result = ExperimentResult("empty", "t", "d")
        assert "no series" in render_experiment_charts(result)
