"""Unit tests for tables, series, and metric helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.metrics import gib, human_size, percent, speedup
from repro.analysis.series import Series
from repro.analysis.tables import Table


class TestMetrics:
    def test_speedup(self):
        assert speedup(30.0, 10.0) == 3.0
        assert speedup(10.0, 0.0) == 0.0

    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (64, "64B"),
            (1023, "1023B"),
            (1024, "1KB"),
            (4 * 1024, "4KB"),
            (1536, "1.5KB"),
            (1024 * 1024, "1MB"),
            (4 * 1024 * 1024, "4MB"),
        ],
    )
    def test_human_size(self, nbytes, expected):
        assert human_size(nbytes) == expected

    def test_human_size_negative_rejected(self):
        with pytest.raises(ValueError):
            human_size(-1)

    def test_gib(self):
        assert gib(1024**3) == 1.0

    def test_percent(self):
        assert percent(0.4321) == "43.2%"


class TestSeries:
    def test_add_and_lookup(self):
        series = Series("s")
        series.add(1, 10.0)
        series.add(2, 20.0)
        assert series.y_at(2) == 20.0
        assert series.xs == [1, 2]
        assert series.ys == [10.0, 20.0]

    def test_missing_x_raises(self):
        with pytest.raises(KeyError):
            Series("s").y_at(5)

    def test_monotonicity(self):
        rising = Series("r", points=[(1, 1.0), (2, 2.0), (3, 3.0)])
        assert rising.is_monotonic_increasing()
        dipping = Series("d", points=[(1, 1.0), (2, 0.5)])
        assert not dipping.is_monotonic_increasing()
        assert dipping.is_monotonic_increasing(tolerance=0.6)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=20))
    def test_sorted_ys_always_monotonic(self, values):
        series = Series("p", points=list(enumerate(sorted(values))))
        assert series.is_monotonic_increasing()


class TestTable:
    def test_render_alignment(self):
        table = Table("T", ["a", "bb"])
        table.add_row("xxx", 1)
        table.add_row("y", 2.5)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "T"
        assert "xxx" in rendered and "2.50" in rendered
        # All data lines have equal column starts.
        assert lines[2].startswith("---")

    def test_row_arity_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only one")

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            Table("T", [])

    def test_float_formatting(self):
        table = Table("T", ["v"])
        table.add_row(3.14159)
        assert "3.14" in table.render()
