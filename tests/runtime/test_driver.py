"""Unit tests for the IDXD-like driver and accel-config facade."""

import pytest

from repro.dsa.config import DeviceConfig, WqMode
from repro.mem import AddressSpace, MemorySystem
from repro.platform import spr_platform
from repro.runtime.accel_config import AccelConfig, parse_device_config
from repro.runtime.driver import DriverError, IdxdDriver
from repro.sim import Environment


@pytest.fixture
def driver():
    env = Environment()
    return IdxdDriver(env, MemorySystem.spr(env))


class TestLifecycle:
    def test_register_then_enable(self, driver):
        driver.register_device("dsa0")
        driver.enable("dsa0")
        assert driver.is_enabled("dsa0")

    def test_double_register_rejected(self, driver):
        driver.register_device("dsa0")
        with pytest.raises(DriverError, match="already registered"):
            driver.register_device("dsa0")

    def test_double_enable_rejected(self, driver):
        driver.register_device("dsa0")
        driver.enable("dsa0")
        with pytest.raises(DriverError, match="already enabled"):
            driver.enable("dsa0")

    def test_disable_unknown_rejected(self, driver):
        with pytest.raises(DriverError):
            driver.disable("nope")

    def test_unknown_device_lookup(self, driver):
        with pytest.raises(DriverError, match="unknown device"):
            driver.device("ghost")


class TestPortals:
    def test_portal_requires_enabled_device(self, driver):
        driver.register_device("dsa0")
        with pytest.raises(DriverError, match="not enabled"):
            driver.open_portal("dsa0", 0, AddressSpace())

    def test_portal_attaches_pasid(self, driver):
        driver.register_device("dsa0")
        driver.enable("dsa0")
        space = AddressSpace()
        portal = driver.open_portal("dsa0", 0, space)
        assert portal.pasid == space.pasid
        assert driver.memsys.iommu.is_attached(space.pasid)

    def test_dwq_exclusive_to_one_pasid(self, driver):
        driver.register_device("dsa0")
        driver.enable("dsa0")
        driver.open_portal("dsa0", 0, AddressSpace())
        with pytest.raises(DriverError, match="dedicated"):
            driver.open_portal("dsa0", 0, AddressSpace())

    def test_swq_shared_by_many(self, driver):
        config = DeviceConfig.single(mode=WqMode.SHARED)
        driver.register_device("dsa0", config=config)
        driver.enable("dsa0")
        for _ in range(4):
            driver.open_portal("dsa0", 0, AddressSpace())

    def test_close_portal_releases_dwq(self, driver):
        driver.register_device("dsa0")
        driver.enable("dsa0")
        portal = driver.open_portal("dsa0", 0, AddressSpace())
        driver.close_portal(portal)
        driver.open_portal("dsa0", 0, AddressSpace())  # no error

    def test_disable_clears_dwq_ownership(self, driver):
        driver.register_device("dsa0")
        driver.enable("dsa0")
        driver.open_portal("dsa0", 0, AddressSpace())
        driver.disable("dsa0")
        driver.enable("dsa0")
        driver.open_portal("dsa0", 0, AddressSpace())  # fresh ownership


class TestAccelConfig:
    SPEC = {
        "wqs": [
            {"id": 0, "size": 16, "mode": "dedicated", "priority": 5},
            {"id": 1, "size": 16, "mode": "shared", "priority": 1},
        ],
        "engines": [0, 1],
        "groups": [{"id": 0, "wqs": [0, 1], "engines": [0, 1]}],
    }

    def test_parse_round_trip(self):
        config = parse_device_config(self.SPEC)
        assert len(config.wqs) == 2
        assert config.wqs[1].mode is WqMode.SHARED
        assert config.wqs[0].priority == 5

    def test_load_config_registers_and_enables(self, driver):
        tool = AccelConfig(driver)
        device = tool.load_config("dsa0", self.SPEC)
        assert driver.is_enabled("dsa0")
        assert device.wq(1).mode is WqMode.SHARED

    def test_list_devices_inventory(self, driver):
        tool = AccelConfig(driver)
        tool.load_config("dsa0", self.SPEC)
        inventory = tool.list_devices()
        assert inventory["dsa0"]["enabled"]
        assert len(inventory["dsa0"]["wqs"]) == 2
        assert inventory["dsa0"]["groups"][0]["engines"] == [0, 1]

    def test_invalid_spec_rejected(self, driver):
        from repro.dsa.errors import ConfigurationError

        bad = dict(self.SPEC, groups=[{"id": 0, "wqs": [7], "engines": [0]}])
        with pytest.raises(ConfigurationError):
            AccelConfig(driver).load_config("dsa0", bad)


class TestPlatformHelpers:
    def test_spr_platform_devices(self):
        platform = spr_platform(n_devices=2)
        assert set(platform.driver.devices) == {"dsa0", "dsa1"}

    def test_core_identity_cached(self):
        platform = spr_platform()
        assert platform.core(3) is platform.core(3)
