"""Multi-device Dml semantics: live-portal rotation, batch PASID guard."""

import pytest

from repro.dsa.opcodes import Opcode
from repro.mem import AddressSpace
from repro.platform import spr_platform
from repro.runtime.dml import Dml, DmlPath

KB = 1024


def build_dml(n_devices=2):
    platform = spr_platform(n_devices=n_devices)
    space = AddressSpace()
    portals = [
        platform.open_portal(f"dsa{i}", 0, space) for i in range(n_devices)
    ]
    dml = Dml(
        platform.env,
        portals,
        kernels=platform.kernels,
        costs=platform.costs,
        space=space,
    )
    return platform, space, dml


class TestNextPortal:
    def test_round_robin_over_live_devices(self):
        _platform, _space, dml = build_dml()
        picks = [dml._next_portal().device.name for _ in range(4)]
        assert picks == ["dsa0", "dsa1", "dsa0", "dsa1"]

    def test_skips_disabled_device(self):
        # The regression this guards: round robin used to hand out
        # portals of disabled devices, wedging every other submission.
        platform, _space, dml = build_dml()
        platform.driver.disable("dsa0")
        picks = {dml._next_portal().device.name for _ in range(4)}
        assert picks == {"dsa1"}

    def test_exclude_masks_by_name(self):
        _platform, _space, dml = build_dml()
        picks = {dml._next_portal(exclude=("dsa1",)).device.name for _ in range(4)}
        assert picks == {"dsa0"}

    def test_raises_only_when_no_device_is_live(self):
        platform, _space, dml = build_dml()
        platform.driver.disable("dsa0")
        platform.driver.disable("dsa1")
        assert not dml.has_hardware
        with pytest.raises(RuntimeError, match="all devices disabled"):
            dml._next_portal()

    def test_reenabled_device_rejoins_rotation(self):
        platform, _space, dml = build_dml()
        platform.driver.disable("dsa0")
        dml._next_portal()
        platform.driver.enable("dsa0")
        picks = {dml._next_portal().device.name for _ in range(4)}
        assert picks == {"dsa0", "dsa1"}

    def test_hardware_path_refuses_when_all_disabled(self):
        platform, space, dml = build_dml()
        platform.driver.disable("dsa0")
        platform.driver.disable("dsa1")
        with pytest.raises(RuntimeError, match="no portals available"):
            dml._choose_path(DmlPath.HARDWARE, 16 * KB)


class TestMakeBatch:
    def test_rejects_empty_batch(self):
        _platform, _space, dml = build_dml()
        with pytest.raises(ValueError, match="at least one descriptor"):
            dml.make_batch([])

    def test_rejects_mixed_pasid_batch(self):
        # The regression this guards: a batch translates under ONE
        # address space; mixing tenants used to slip through and
        # translate half the batch in the wrong page table.
        _platform, space_a, dml = build_dml()
        space_b = AddressSpace()
        a_src = space_a.allocate(4 * KB)
        a_dst = space_a.allocate(4 * KB)
        b_src = space_b.allocate(4 * KB)
        b_dst = space_b.allocate(4 * KB)
        first = dml.make_descriptor(Opcode.MEMMOVE, 4 * KB, src=a_src, dst=a_dst)
        second = dml.make_descriptor(Opcode.MEMMOVE, 4 * KB, src=b_src, dst=b_dst)
        with pytest.raises(ValueError, match="mixed-PASID batch"):
            dml.make_batch([first, second])

    def test_uniform_pasid_batch_carries_the_space(self):
        _platform, space, dml = build_dml()
        descriptors = [
            dml.make_descriptor(
                Opcode.MEMMOVE,
                4 * KB,
                src=space.allocate(4 * KB),
                dst=space.allocate(4 * KB),
            )
            for _ in range(3)
        ]
        batch = dml.make_batch(descriptors)
        assert batch.pasid == space.pasid
