"""Tests for the DML high-level operation wrappers."""

import numpy as np
import pytest

from repro.dsa.crc import crc32c
from repro.mem import AddressSpace
from repro.platform import spr_platform
from repro.runtime.dml import Dml, DmlPath
from repro.sim import make_rng

KB = 1024


@pytest.fixture
def stack():
    platform = spr_platform()
    space = AddressSpace()
    portal = platform.open_portal("dsa0", 0, space)
    dml = Dml(
        platform.env,
        [portal],
        kernels=platform.kernels,
        costs=platform.costs,
        space=space,
    )
    return platform, space, dml, platform.core(0)


def run(platform, generator):
    out = {}

    def proc(env):
        out["value"] = yield from generator

    platform.env.process(proc(platform.env))
    platform.env.run()
    return out["value"]


class TestWrappers:
    def test_mem_move(self, stack):
        platform, space, dml, core = stack
        src = space.allocate(32 * KB, backed=True)
        dst = space.allocate(32 * KB, backed=True)
        src.fill_random(make_rng(1))
        run(platform, dml.mem_move(core, src, dst, 32 * KB, path=DmlPath.HARDWARE))
        assert np.array_equal(dst.data, src.data)

    def test_fill(self, stack):
        platform, space, dml, core = stack
        dst = space.allocate(16 * KB, backed=True)
        run(
            platform,
            dml.fill(core, dst, 16 * KB, 0x4141414141414141, path=DmlPath.HARDWARE),
        )
        assert (dst.data == 0x41).all()

    def test_compare_equal_and_unequal(self, stack):
        platform, space, dml, core = stack
        a = space.allocate(16 * KB, backed=True)
        b = space.allocate(16 * KB, backed=True)
        a.fill_random(make_rng(2))
        b.data[:] = a.data
        assert run(platform, dml.compare(core, a, b, 16 * KB, path=DmlPath.HARDWARE)) == 0
        b.data[5] ^= 1
        assert run(platform, dml.compare(core, a, b, 16 * KB, path=DmlPath.HARDWARE)) == 1

    def test_crc_matches_reference(self, stack):
        platform, space, dml, core = stack
        src = space.allocate(8 * KB, backed=True)
        src.fill_random(make_rng(3))
        value = run(platform, dml.crc(core, src, 8 * KB, path=DmlPath.HARDWARE))
        assert value == crc32c(src.data)

    def test_dualcast(self, stack):
        platform, space, dml, core = stack
        src = space.allocate(8 * KB, backed=True)
        d1 = space.allocate(8 * KB, backed=True)
        d2 = space.allocate(8 * KB, backed=True)
        src.fill_random(make_rng(4))
        run(platform, dml.dualcast(core, src, d1, d2, 8 * KB, path=DmlPath.HARDWARE))
        assert np.array_equal(d1.data, src.data)
        assert np.array_equal(d2.data, src.data)

    def test_delta_create_apply(self, stack):
        platform, space, dml, core = stack
        original = space.allocate(2 * KB, backed=True)
        modified = space.allocate(2 * KB, backed=True)
        blob = space.allocate(4 * KB, backed=True)
        original.fill_random(make_rng(5))
        modified.data[:] = original.data
        modified.data[100] ^= 0xFF
        delta_size = run(
            platform,
            dml.create_delta(
                core, original, modified, blob, 2 * KB, path=DmlPath.HARDWARE
            ),
        )
        assert delta_size == 10
        target = space.allocate(2 * KB, backed=True)
        target.data[:] = original.data
        run(
            platform,
            dml.apply_delta(
                core, blob, target, 2 * KB, delta_size, path=DmlPath.HARDWARE
            ),
        )
        assert np.array_equal(target.data, modified.data)

    def test_wrappers_work_on_software_path_too(self, stack):
        platform, space, dml, core = stack
        src = space.allocate(4 * KB, backed=True)
        dst = space.allocate(4 * KB, backed=True)
        src.fill_random(make_rng(6))
        run(platform, dml.mem_move(core, src, dst, 4 * KB, path=DmlPath.SOFTWARE))
        assert np.array_equal(dst.data, src.data)
        assert dml.jobs_software == 1
