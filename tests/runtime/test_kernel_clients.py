"""Tests for in-kernel clients and the DWQ credit tracker."""

import pytest

from repro.cpu.core import CycleCategory
from repro.dsa.config import DeviceConfig, WqMode
from repro.dsa.descriptor import WorkDescriptor
from repro.dsa.opcodes import Opcode
from repro.mem import AddressSpace
from repro.platform import spr_platform
from repro.runtime.kernel_clients import ClearPageEngine
from repro.runtime.submit import DwqCreditTracker

KB = 1024


class TestClearPageEngine:
    def _engine(self, **kwargs):
        platform = spr_platform()
        device = platform.driver.device("dsa0")
        return platform, ClearPageEngine(platform.env, device, **kwargs)

    def test_pages_cleared_counted(self):
        platform, engine = self._engine(pages_per_batch=8)
        core = platform.core(0)

        def proc(env):
            yield from engine.clear_pages(core, 20)

        platform.env.process(proc(platform.env))
        platform.env.run()
        assert engine.stats.pages_cleared == 20
        assert engine.stats.batches_submitted == 3  # 8 + 8 + 4
        assert engine.stats.bytes_zeroed == 20 * 4 * KB

    def test_pages_really_zeroed(self):
        platform, engine = self._engine(pages_per_batch=4)
        core = platform.core(0)

        def proc(env):
            yield from engine.clear_pages(core, 4, backed=True)

        platform.env.process(proc(platform.env))
        platform.env.run()
        for buffer in engine.space._buffers.values():
            assert not buffer.data.any()

    def test_core_mostly_idle_while_clearing(self):
        platform, engine = self._engine(pages_per_batch=32)
        core = platform.core(0)

        def proc(env):
            yield from engine.clear_pages(core, 256)

        platform.env.process(proc(platform.env))
        platform.env.run()
        assert core.time_in(CycleCategory.IDLE) > core.time_in(CycleCategory.SUBMIT)

    def test_beats_software_clear(self):
        platform, engine = self._engine(pages_per_batch=32)
        core = platform.core(0)
        start = platform.env.now

        def proc(env):
            yield from engine.clear_pages(core, 512)

        platform.env.process(proc(platform.env))
        platform.env.run()
        offload_ns = platform.env.now - start
        assert offload_ns < engine.software_clear_time(512)

    def test_invalid_args(self):
        platform, engine = self._engine()
        with pytest.raises(ValueError):
            ClearPageEngine(platform.env, platform.driver.device("dsa0"), pages_per_batch=0)

        def proc(env):
            yield from engine.clear_pages(platform.core(0), 0)

        platform.env.process(proc(platform.env))
        with pytest.raises(ValueError):
            platform.env.run()


class TestDwqCreditTracker:
    def _portal(self, wq_size=4, mode=WqMode.DEDICATED):
        platform = spr_platform(
            device_config=DeviceConfig.single(wq_size=wq_size, mode=mode)
        )
        space = AddressSpace()
        portal = platform.open_portal("dsa0", 0, space)
        return platform, space, portal

    def test_starts_with_wq_size_credits(self):
        _platform, _space, portal = self._portal(wq_size=4)
        tracker = DwqCreditTracker(portal)
        assert tracker.available == 4

    def test_rejects_shared_wqs(self):
        _platform, _space, portal = self._portal(mode=WqMode.SHARED)
        with pytest.raises(ValueError, match="dedicated"):
            DwqCreditTracker(portal)

    def test_acquire_release_cycle(self):
        _platform, _space, portal = self._portal(wq_size=2)
        tracker = DwqCreditTracker(portal)
        assert tracker.try_acquire()
        assert tracker.try_acquire()
        assert not tracker.try_acquire()
        tracker.release()
        assert tracker.try_acquire()

    def test_over_release_rejected(self):
        _platform, _space, portal = self._portal(wq_size=2)
        tracker = DwqCreditTracker(portal)
        with pytest.raises(RuntimeError, match="without a matching"):
            tracker.release()

    def test_submit_with_credit_never_overflows(self):
        """Hammer a tiny DWQ far beyond its size: no SubmissionError."""
        platform, space, portal = self._portal(wq_size=2)
        tracker = DwqCreditTracker(portal)
        core = platform.core(0)
        completed = []

        def producer(env):
            for index in range(20):
                src = space.allocate(64 * KB)
                dst = space.allocate(64 * KB)
                descriptor = WorkDescriptor(
                    Opcode.MEMMOVE, pasid=space.pasid, src=src.va, dst=dst.va, size=64 * KB
                )
                yield from tracker.submit_with_credit(env, core, descriptor)
                env.process(reaper(env, descriptor))

        def reaper(env, descriptor):
            yield descriptor.completion_event
            tracker.release()
            completed.append(descriptor)

        platform.env.process(producer(platform.env))
        platform.env.run()
        assert len(completed) == 20
