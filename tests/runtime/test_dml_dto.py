"""Unit tests for the DML and DTO library models."""

import numpy as np
import pytest

from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import Opcode
from repro.mem import AddressSpace
from repro.platform import spr_platform
from repro.runtime.dml import Dml, DmlPath
from repro.runtime.dto import Dto
from repro.sim import make_rng

KB = 1024


def build_stack(backed=False, n_portals=1, auto_threshold=4096):
    platform = spr_platform(n_devices=max(1, n_portals))
    space = AddressSpace()
    portals = [
        platform.open_portal(f"dsa{i}", 0, space) for i in range(n_portals)
    ]
    dml = Dml(
        platform.env,
        portals,
        kernels=platform.kernels,
        costs=platform.costs,
        space=space,
        auto_threshold=auto_threshold,
    )
    return platform, space, dml


def run_call(platform, generator):
    out = {}

    def proc(env):
        out["result"] = yield from generator

    platform.env.process(proc(platform.env))
    platform.env.run()
    return out["result"]


class TestDmlPaths:
    def test_auto_small_goes_software(self):
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(KB)
        dst = space.allocate(KB)
        desc = dml.make_descriptor(Opcode.MEMMOVE, KB, src=src, dst=dst)
        status = run_call(platform, dml.execute(core, desc))
        assert status == StatusCode.SUCCESS
        assert dml.jobs_software == 1
        assert dml.jobs_hardware == 0

    def test_auto_large_goes_hardware(self):
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(64 * KB)
        dst = space.allocate(64 * KB)
        desc = dml.make_descriptor(Opcode.MEMMOVE, 64 * KB, src=src, dst=dst)
        status = run_call(platform, dml.execute(core, desc))
        assert status == StatusCode.SUCCESS
        assert dml.jobs_hardware == 1

    def test_forced_software_path(self):
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(64 * KB)
        dst = space.allocate(64 * KB)
        desc = dml.make_descriptor(Opcode.MEMMOVE, 64 * KB, src=src, dst=dst)
        run_call(platform, dml.execute(core, desc, path=DmlPath.SOFTWARE))
        assert dml.jobs_hardware == 0

    def test_hardware_path_without_portals_raises(self):
        platform = spr_platform()
        dml = Dml(platform.env, portals=[])
        core = platform.core(0)
        desc = dml.make_descriptor(Opcode.FILL, KB)
        with pytest.raises(RuntimeError, match="no portals"):
            run_call(platform, dml.execute(core, desc, path=DmlPath.HARDWARE))

    def test_software_functional_execution(self):
        platform = spr_platform()
        space = AddressSpace()
        dml = Dml(platform.env, [platform.open_portal("dsa0", 0, space)], space=space)
        core = platform.core(0)
        src = space.allocate(KB, backed=True)
        dst = space.allocate(KB, backed=True)
        src.fill_random(make_rng(5))
        desc = dml.make_descriptor(Opcode.MEMMOVE, KB, src=src, dst=dst)
        run_call(platform, dml.execute(core, desc, path=DmlPath.SOFTWARE))
        assert np.array_equal(dst.data, src.data)

    def test_hardware_functional_execution(self):
        platform = spr_platform()
        space = AddressSpace()
        dml = Dml(platform.env, [platform.open_portal("dsa0", 0, space)], space=space)
        core = platform.core(0)
        src = space.allocate(32 * KB, backed=True)
        dst = space.allocate(32 * KB, backed=True)
        src.fill_random(make_rng(6))
        desc = dml.make_descriptor(Opcode.MEMMOVE, 32 * KB, src=src, dst=dst)
        run_call(platform, dml.execute(core, desc, path=DmlPath.HARDWARE))
        assert np.array_equal(dst.data, src.data)

    def test_async_submit_then_wait(self):
        platform, space, dml = build_stack()
        core = platform.core(0)
        src = space.allocate(64 * KB)
        dst = space.allocate(64 * KB)
        desc = dml.make_descriptor(Opcode.MEMMOVE, 64 * KB, src=src, dst=dst)

        def proc(env):
            job = yield from dml.submit_async(core, desc)
            assert not job.done  # overlap window exists
            status = yield from dml.wait(core, job)
            assert status == StatusCode.SUCCESS

        platform.env.process(proc(platform.env))
        platform.env.run()
        assert desc.completion.done

    def test_load_balancing_round_robin(self):
        platform, space, dml = build_stack(n_portals=2)
        core = platform.core(0)

        def proc(env):
            for _ in range(4):
                src = space.allocate(16 * KB)
                dst = space.allocate(16 * KB)
                desc = dml.make_descriptor(Opcode.MEMMOVE, 16 * KB, src=src, dst=dst)
                job = yield from dml.submit_async(core, desc)
                yield from dml.wait(core, job)

        platform.env.process(proc(platform.env))
        platform.env.run()
        dev0 = platform.driver.device("dsa0").descriptors_completed
        dev1 = platform.driver.device("dsa1").descriptors_completed
        assert dev0 == 2 and dev1 == 2

    def test_make_batch_rejects_empty(self):
        with pytest.raises(ValueError):
            Dml.make_batch([])


class TestDto:
    def test_small_call_stays_on_cpu(self):
        platform, space, dml = build_stack()
        dto = Dto(dml, min_size=8 * KB)
        core = platform.core(0)
        src = space.allocate(KB)
        dst = space.allocate(KB)
        run_call(platform, dto.memcpy(core, dst, src, KB))
        assert dto.stats.software == 1
        assert dto.stats.offloaded == 0

    def test_large_call_offloads(self):
        platform, space, dml = build_stack()
        dto = Dto(dml, min_size=8 * KB)
        core = platform.core(0)
        src = space.allocate(64 * KB)
        dst = space.allocate(64 * KB)
        run_call(platform, dto.memcpy(core, dst, src, 64 * KB))
        assert dto.stats.offloaded == 1
        assert dto.stats.bytes_offloaded == 64 * KB

    def test_memset_pattern_replication(self):
        platform = spr_platform()
        space = AddressSpace()
        dml = Dml(platform.env, [platform.open_portal("dsa0", 0, space)], space=space)
        dto = Dto(dml, min_size=1)
        core = platform.core(0)
        dst = space.allocate(16 * KB, backed=True)
        run_call(platform, dto.memset(core, dst, 0xAB, 16 * KB))
        assert (dst.data == 0xAB).all()

    def test_memcmp_equal_and_differing(self):
        platform = spr_platform()
        space = AddressSpace()
        dml = Dml(platform.env, [platform.open_portal("dsa0", 0, space)], space=space)
        dto = Dto(dml, min_size=1)
        core = platform.core(0)
        a = space.allocate(16 * KB, backed=True)
        b = space.allocate(16 * KB, backed=True)
        a.fill_random(make_rng(7))
        b.data[:] = a.data
        assert run_call(platform, dto.memcmp(core, a, b, 16 * KB)) == 0
        b.data[100] ^= 1
        assert run_call(platform, dto.memcmp(core, a, b, 16 * KB)) == 1

    def test_fault_fallback_redoes_on_cpu(self):
        platform = spr_platform()
        space = AddressSpace()
        dml = Dml(platform.env, [platform.open_portal("dsa0", 0, space)], space=space)
        dto = Dto(dml, min_size=1)
        core = platform.core(0)
        src = space.allocate(16 * KB, prefault=False)
        dst = space.allocate(16 * KB, prefault=True)
        # DTO submits without BLOCK_ON_FAULT? The model uses DML's
        # default (block-on-fault set), so force the faulting path by
        # stripping the flag.
        descriptor = dml.make_descriptor(Opcode.MEMMOVE, 16 * KB, src=src, dst=dst)
        from repro.dsa.opcodes import DescriptorFlags

        descriptor.flags = DescriptorFlags.REQUEST_COMPLETION
        out = {}

        def proc(env):
            status = yield from dml.execute(core, descriptor, path=DmlPath.HARDWARE)
            if status is StatusCode.PAGE_FAULT:
                dto.stats.fault_fallbacks += 1
                status = yield from dml.run_software(core, descriptor)
            out["status"] = status

        platform.env.process(proc(platform.env))
        platform.env.run()
        assert out["status"] == StatusCode.SUCCESS
        assert dto.stats.fault_fallbacks == 1

    def test_negative_min_size_rejected(self):
        platform, space, dml = build_stack()
        with pytest.raises(ValueError):
            Dto(dml, min_size=-1)
