"""Unit tests for the submission and wait paths."""

import pytest

from repro.cpu.core import CpuCore, CycleCategory
from repro.cpu.instructions import InstructionCosts
from repro.dsa.config import DeviceConfig, WqMode
from repro.dsa.descriptor import WorkDescriptor
from repro.dsa.opcodes import Opcode
from repro.mem import AddressSpace
from repro.platform import spr_platform
from repro.runtime.submit import prepare_descriptor, submit
from repro.runtime.wait import WaitMode, wait_for


def setup_portal(mode=WqMode.DEDICATED, wq_size=32):
    platform = spr_platform(device_config=DeviceConfig.single(wq_size=wq_size, mode=mode))
    space = AddressSpace()
    portal = platform.open_portal("dsa0", 0, space)
    core = platform.core(0)
    return platform, space, portal, core


def make_copy_desc(space, size=4096):
    src = space.allocate(size)
    dst = space.allocate(size)
    return WorkDescriptor(
        Opcode.MEMMOVE, pasid=space.pasid, src=src.va, dst=dst.va, size=size
    )


class TestPrepare:
    def test_prepare_stamps_time_and_accounts(self):
        platform, space, portal, core = setup_portal()
        desc = make_copy_desc(space)

        def proc(env):
            yield from prepare_descriptor(env, core, desc)

        platform.env.process(proc(platform.env))
        platform.env.run()
        assert desc.times.prepared is not None
        assert core.time_in(CycleCategory.PREPARE) > 0
        assert core.time_in(CycleCategory.ALLOC) == 0

    def test_allocation_optional(self):
        platform, space, portal, core = setup_portal()
        desc = make_copy_desc(space)

        def proc(env):
            yield from prepare_descriptor(env, core, desc, allocate=True)

        platform.env.process(proc(platform.env))
        platform.env.run()
        assert desc.times.allocated is not None
        assert core.time_in(CycleCategory.ALLOC) > 0


class TestSubmit:
    def test_dwq_movdir_cost(self):
        platform, space, portal, core = setup_portal()
        desc = make_copy_desc(space)
        retries = []

        def proc(env):
            retries.append((yield from submit(env, core, portal, desc)))

        platform.env.process(proc(platform.env))
        platform.env.run()
        assert retries == [0]
        assert core.time_in(CycleCategory.SUBMIT) == platform.costs.movdir64b_ns

    def test_swq_enqcmd_retries_until_accepted(self):
        """Saturate the engine's read buffers and the 1-entry SWQ so a
        later ENQCMD gets the retry status and loops."""
        platform, space, portal, core = setup_portal(mode=WqMode.SHARED, wq_size=1)
        total_retries = []

        def proc(env):
            retries = 0
            for _ in range(40):  # > read buffers (32) + WQ entries (1)
                desc = make_copy_desc(space, size=1 << 20)
                retries += yield from submit(env, core, portal, desc)
            total_retries.append(retries)

        platform.env.process(proc(platform.env))
        platform.env.run()
        assert total_retries[0] > 0
        assert core.time_in(CycleCategory.SUBMIT) >= 40 * platform.costs.enqcmd_ns

    def test_swq_bounded_retries_raise(self):
        platform, space, portal, core = setup_portal(mode=WqMode.SHARED, wq_size=1)

        def proc(env):
            for _ in range(40):
                desc = make_copy_desc(space, size=1 << 20)
                yield from submit(env, core, portal, desc, max_retries=0)

        platform.env.process(proc(platform.env))
        with pytest.raises(RuntimeError, match="retries"):
            platform.env.run()


class TestWait:
    @pytest.mark.parametrize(
        "mode,category",
        [
            (WaitMode.SPIN, CycleCategory.WAIT_SPIN),
            (WaitMode.UMWAIT, CycleCategory.UMWAIT),
            (WaitMode.INTERRUPT, CycleCategory.IDLE),
        ],
    )
    def test_wait_books_category(self, mode, category):
        platform, space, portal, core = setup_portal()
        desc = make_copy_desc(space, size=65536)
        waited = {}

        def proc(env):
            yield from submit(env, core, portal, desc)
            waited["ns"] = yield from wait_for(env, core, desc, mode)

        platform.env.process(proc(platform.env))
        platform.env.run()
        assert desc.completion.done
        assert waited["ns"] > 0
        assert core.time_in(category) == pytest.approx(waited["ns"])

    def test_wait_without_submit_rejected(self):
        platform, space, portal, core = setup_portal()
        desc = make_copy_desc(space)

        def proc(env):
            yield from wait_for(env, core, desc)

        platform.env.process(proc(platform.env))
        with pytest.raises(RuntimeError, match="never submitted"):
            platform.env.run()

    def test_umwait_cheaper_than_interrupt_wakeup(self):
        costs = InstructionCosts()
        assert costs.umwait_wake_ns < costs.interrupt_ns

    def test_umwait_deadline_rearms_and_cancels_on_completion(self):
        """IA32_UMWAIT_CONTROL TSC deadline: short deadlines force
        re-arm wakeups, the final armed deadline is cancelled when the
        completion wins, and the total wait matches the no-deadline
        timing exactly."""
        platform, space, portal, core = setup_portal()
        desc = make_copy_desc(space, size=1 << 20)
        waited = {}

        def proc(env):
            yield from submit(env, core, portal, desc)
            waited["ns"] = yield from wait_for(
                env, core, desc, WaitMode.UMWAIT, max_wait_ns=100.0
            )

        env = platform.env
        env.process(proc(env))
        env.run()
        assert desc.completion.done
        assert waited["ns"] > 100.0  # the copy outlives several deadlines
        wakes = env.metrics.counter("core0.wait.umwait_deadline_wakes").value
        assert wakes == int(waited["ns"] // 100.0)
        assert core.time_in(CycleCategory.UMWAIT) == pytest.approx(waited["ns"])
        # The deadline armed when the completion landed was cancelled,
        # not left to fire into a stale no-op.
        assert env.cancelled_events >= 1

    def test_umwait_deadline_none_matches_default_timing(self):
        results = []
        for max_wait_ns in (None, 50.0):
            platform, space, portal, core = setup_portal()
            desc = make_copy_desc(space, size=1 << 20)
            waited = {}

            def proc(env):
                yield from submit(env, core, portal, desc)
                waited["ns"] = yield from wait_for(
                    env, core, desc, WaitMode.UMWAIT, max_wait_ns=max_wait_ns
                )

            platform.env.process(proc(platform.env))
            platform.env.run()
            results.append((waited["ns"], platform.env.now))
        # Deadline wakeups re-check and re-arm; they never change when
        # the completion is observed.
        assert results[0] == pytest.approx(results[1])

    def test_umwait_deadline_must_be_positive(self):
        platform, space, portal, core = setup_portal()
        desc = make_copy_desc(space)

        def proc(env):
            yield from submit(env, core, portal, desc)
            with pytest.raises(ValueError, match="max_wait_ns"):
                yield from wait_for(
                    env, core, desc, WaitMode.UMWAIT, max_wait_ns=0.0
                )

        platform.env.process(proc(platform.env))
        platform.env.run()


class TestCpuCore:
    def test_fraction_accounting(self):
        platform = spr_platform()
        core = platform.core(0)
        core.account(CycleCategory.BUSY, 25.0)
        core.account(CycleCategory.UMWAIT, 75.0)
        assert core.fraction(CycleCategory.UMWAIT) == pytest.approx(0.75)

    def test_cycles_scale_with_frequency(self):
        core = CpuCore(platform_env(), frequency_ghz=3.0)
        core.account(CycleCategory.BUSY, 10.0)
        assert core.cycles_in(CycleCategory.BUSY) == pytest.approx(30.0)

    def test_negative_duration_rejected(self):
        core = CpuCore(platform_env())
        with pytest.raises(ValueError):
            core.account(CycleCategory.BUSY, -1.0)

    def test_reset(self):
        core = CpuCore(platform_env())
        core.account(CycleCategory.BUSY, 5.0)
        core.reset()
        assert core.accounted_time == 0.0


def platform_env():
    from repro.sim import Environment

    return Environment()
