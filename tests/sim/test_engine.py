"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(5.0)
    env.run()
    assert env.now == 5.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_process_receives_timeout_value():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_process_return_value_becomes_event_value():
    env = Environment()

    def inner(env):
        yield env.timeout(1.0)
        return 42

    def outer(env, results):
        result = yield env.process(inner(env))
        results.append(result)

    results = []
    env.process(outer(env, results))
    env.run()
    assert results == [42]


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 3.0, "c"))
    env.process(proc(env, 1.0, "a"))
    env.process(proc(env, 2.0, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        env.process(proc(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_stops_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(100.0)

    env.process(proc(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_raises():
    env = Environment(initial_time=50.0)
    with pytest.raises(ValueError):
        env.run(until=10.0)


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter(env):
        value = yield gate
        seen.append((env.now, value))

    def opener(env):
        yield env.timeout(7.0)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert seen == [(7.0, "open")]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_raises_in_process():
    env = Environment()
    caught = []

    def proc(env, gate):
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    gate = env.event()
    env.process(proc(env, gate))
    gate.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_process_crash_propagates_to_waiter():
    env = Environment()
    caught = []

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("bad process")

    def waiter(env):
        try:
            yield env.process(bad(env))
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter(env))
    env.run()
    assert caught == ["bad process"]


def test_interrupt_is_delivered():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def attacker(env, proc):
        yield env.timeout(5.0)
        proc.interrupt("preempted")

    proc = env.process(victim(env))
    env.process(attacker(env, proc))
    env.run()
    assert log == [(5.0, "preempted")]


def test_interrupt_finished_process_is_noop():
    # An interrupt can race a same-timestamp completion; the documented
    # behaviour is that interrupting a finished process delivers nothing.
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)
        return "done"

    proc = env.process(quick(env))
    env.run()
    proc.interrupt()  # must not raise
    env.run()
    assert proc.value == "done"


def test_interrupt_racing_same_timestamp_completion():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(10.0)
            log.append("completed")
        except Interrupt:  # pragma: no cover - would be the old bug
            log.append("interrupted")

    def racer(env, proc):
        yield env.timeout(10.0)
        proc.interrupt("too late")  # victim completes at the same tick

    proc = env.process(victim(env))
    env.process(racer(env, proc))
    env.run()
    assert log == ["completed"]


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc(env):
        yield env.all_of([env.timeout(1.0), env.timeout(5.0), env.timeout(3.0)])
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [5.0]


def test_any_of_waits_for_first_event():
    env = Environment()
    times = []

    def proc(env):
        yield env.any_of([env.timeout(9.0), env.timeout(2.0)])
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [2.0]


def test_all_of_empty_triggers_immediately():
    env = Environment()
    done = []

    def proc(env):
        yield env.all_of([])
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0.0]


def test_yield_non_event_raises():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(4.0)
    assert env.peek() == 4.0
    env.run()
    assert env.peek() == float("inf")


def test_nested_processes_compose():
    env = Environment()

    def leaf(env, n):
        yield env.timeout(float(n))
        return n * n

    def root(env, out):
        total = 0
        for n in (1, 2, 3):
            total += yield env.process(leaf(env, n))
        out.append((env.now, total))

    out = []
    env.process(root(env, out))
    env.run()
    assert out == [(6.0, 14)]
