"""Tests for first-class timer cancellation in the engine.

Pins the cancellation contract documented in ``docs/PERFORMANCE.md``:
cancelled events never run their callbacks, their calendar entries are
discarded lazily (bulk-compacted past the threshold), the clock never
advances because of them, and the churn is observable through the
``sim.cancelled_events`` / ``sim.stale_timers`` counter pair.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.sim import Environment, SimulationError
from repro.sim.engine import CALENDAR_COMPACT_THRESHOLD


class TestCancelSemantics:
    def test_cancelled_timer_callbacks_never_run(self):
        env = Environment()
        fired = []
        timer = env.timeout(5.0)
        timer.callbacks.append(lambda ev: fired.append(env.now))
        assert timer.cancel() is True
        env.run()
        assert fired == []
        assert timer.cancelled

    def test_cancelled_entry_does_not_advance_clock(self):
        env = Environment()
        env.timeout(100.0).cancel()
        env.timeout(3.0)
        env.run()
        assert env.now == 3.0  # the cancelled 100 ns entry never happened

    def test_cancel_is_idempotent_and_counts_once(self):
        env = Environment()
        timer = env.timeout(1.0)
        assert timer.cancel() is True
        assert timer.cancel() is False
        assert env.cancelled_events == 1

    def test_cancel_after_processed_is_noop(self):
        env = Environment()
        timer = env.timeout(1.0)
        env.run()
        assert timer.processed
        assert timer.cancel() is False
        assert not timer.cancelled

    def test_succeed_after_cancel_raises(self):
        env = Environment()
        event = env.event()
        event.cancel()
        with pytest.raises(SimulationError):
            event.succeed()
        with pytest.raises(SimulationError):
            event.fail(RuntimeError("boom"))

    def test_process_cannot_be_cancelled(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)

        process = env.process(proc())
        with pytest.raises(SimulationError):
            process.cancel()
        env.run()

    def test_cancelled_member_never_reaches_condition(self):
        env = Environment()
        slow = env.timeout(10.0)
        fast = env.timeout(1.0)
        condition = env.all_of([fast, slow])
        slow.cancel()
        env.run()
        # The condition never completes (its cancelled member is gone),
        # but it also must not crash or collect the cancelled event.
        assert not condition.triggered

    def test_run_until_with_cancelled_top(self):
        env = Environment()
        env.timeout(50.0).cancel()
        env.run(until=10.0)
        assert env.now == 10.0


class TestCalendarHygiene:
    def test_peek_skips_cancelled_entries(self):
        env = Environment()
        early = env.timeout(1.0)
        env.timeout(2.0)
        early.cancel()
        assert env.peek() == 2.0

    def test_step_skips_cancelled_and_processes_next_live(self):
        env = Environment()
        fired = []
        first = env.timeout(1.0)
        second = env.timeout(2.0)
        second.callbacks.append(lambda ev: fired.append(env.now))
        first.cancel()
        env.step()
        assert fired == [2.0]

    def test_step_raises_when_only_cancelled_entries_remain(self):
        env = Environment()
        env.timeout(1.0).cancel()
        with pytest.raises(SimulationError):
            env.step()

    def test_compaction_sweeps_dominating_dead_entries(self):
        env = Environment()
        keep = env.timeout(1e9)
        timers = [env.timeout(float(i + 1)) for i in range(CALENDAR_COMPACT_THRESHOLD * 3)]
        for timer in timers:
            timer.cancel()
        # The bulk of the calendar was cancelled -> compaction kicked in.
        assert len(env._calendar) < len(timers)
        assert env.stale_timers > 0
        assert not keep.cancelled

    def test_compaction_preserves_live_schedule(self):
        env = Environment()
        fired = []
        for i in range(CALENDAR_COMPACT_THRESHOLD * 3):
            env.timeout(float(i + 1)).cancel()
        live = env.timeout(7.5)
        live.callbacks.append(lambda ev: fired.append(env.now))
        # Events scheduled after a compaction must still be processed
        # (the compaction rebuilds the calendar list in place).
        late = env.timeout(9.0)
        late.callbacks.append(lambda ev: fired.append(env.now))
        env.run()
        assert fired == [7.5, 9.0]


class TestCompactionThreshold:
    """Exact boundary of the lazy-sweep trigger.

    Compaction runs only when BOTH hold after a cancel: the dead count
    strictly exceeds ``CALENDAR_COMPACT_THRESHOLD`` (64) AND dead
    entries make up more than half the calendar.  These tests pin the
    off-by-one on each condition.
    """

    @staticmethod
    def _cancel_n(env, timers, n):
        for timer in timers[:n]:
            timer.cancel()

    def test_threshold_cancels_do_not_compact(self):
        env = Environment()
        timers = [env.timeout(float(i + 1)) for i in range(100)]
        self._cancel_n(env, timers, CALENDAR_COMPACT_THRESHOLD)
        # 64 > 64 is false: every dead entry is still in the heap.
        assert env._dead_entries == CALENDAR_COMPACT_THRESHOLD
        assert len(env._calendar) == 100
        assert env.stale_timers == 0

    def test_one_past_threshold_compacts(self):
        env = Environment()
        timers = [env.timeout(float(i + 1)) for i in range(100)]
        self._cancel_n(env, timers, CALENDAR_COMPACT_THRESHOLD + 1)
        # 65 > 64 and 130 > 100: the sweep fires and zeroes the debt.
        assert env.stale_timers == CALENDAR_COMPACT_THRESHOLD + 1
        assert len(env._calendar) == 100 - (CALENDAR_COMPACT_THRESHOLD + 1)
        assert env._dead_entries == 0

    def test_majority_condition_defers_compaction(self):
        env = Environment()
        timers = [env.timeout(float(i + 1)) for i in range(200)]
        self._cancel_n(env, timers, CALENDAR_COMPACT_THRESHOLD + 1)
        # Past the count threshold, but 130 > 200 is false: dead entries
        # are a minority, so the sweep waits.
        assert env._dead_entries == CALENDAR_COMPACT_THRESHOLD + 1
        assert len(env._calendar) == 200
        assert env.stale_timers == 0

    def test_exact_half_does_not_compact(self):
        env = Environment()
        n = 2 * (CALENDAR_COMPACT_THRESHOLD + 1)  # 130 entries
        timers = [env.timeout(float(i + 1)) for i in range(n)]
        self._cancel_n(env, timers, CALENDAR_COMPACT_THRESHOLD + 1)
        # Exactly half dead (130 > 130 false): strict majority required.
        assert env._dead_entries == CALENDAR_COMPACT_THRESHOLD + 1
        assert len(env._calendar) == n
        timers[CALENDAR_COMPACT_THRESHOLD + 1].cancel()  # one past half
        assert env._dead_entries == 0
        assert env.stale_timers == CALENDAR_COMPACT_THRESHOLD + 2

    def test_compacted_calendar_still_runs_survivors(self):
        env = Environment()
        fired = []
        timers = [env.timeout(float(i + 1)) for i in range(100)]
        timers[-1].callbacks.append(lambda ev: fired.append(env.now))
        self._cancel_n(env, timers, CALENDAR_COMPACT_THRESHOLD + 1)
        env.run()
        assert fired == [100.0]
        assert env.now == 100.0


class TestChurnCounters:
    def test_counters_flush_to_metrics_registry(self):
        registry = MetricsRegistry()
        env = Environment(metrics=registry)
        env.timeout(1.0).cancel()
        env.timeout(2.0)
        env.run()
        assert registry.counter("sim.cancelled_events").value == 1
        assert registry.counter("sim.stale_timers").value == 1
        assert env.cancelled_events == 1
        assert env.stale_timers == 1

    def test_flush_is_delta_based_across_runs(self):
        registry = MetricsRegistry()
        env = Environment(metrics=registry)
        env.timeout(1.0).cancel()
        env.run()
        env.timeout(2.0).cancel()
        env.timeout(3.0)
        env.run()
        assert registry.counter("sim.cancelled_events").value == 2
        assert registry.counter("sim.stale_timers").value == 2

    def test_no_metrics_rows_without_churn(self):
        registry = MetricsRegistry()
        env = Environment(metrics=registry)
        env.timeout(1.0)
        env.run()
        names = {name for name, _metric in registry}
        assert "sim.cancelled_events" not in names
        assert "sim.stale_timers" not in names

    def test_fair_share_link_reports_churn(self):
        from repro.mem.link import FairShareLink

        registry = MetricsRegistry()
        env = Environment(metrics=registry)
        link = FairShareLink(env, bandwidth=10.0)

        def proc(delay, nbytes):
            yield env.timeout(delay)
            yield link.transfer(nbytes)

        for i in range(8):
            env.process(proc(float(i), 100.0 + i))
        env.run()
        # Every join/leave re-armed the single wake timer by cancelling
        # the stale one; the churn is observable, and no version-checked
        # zombie timers survive in the calendar.
        assert env.cancelled_events > 0
        assert registry.counter("sim.cancelled_events").value == env.cancelled_events
        assert env._calendar == []
