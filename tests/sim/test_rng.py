"""Determinism tests for the rng helpers and :class:`BatchedStream`.

The load-bearing claim (S3): batched draws are *draw-for-draw identical*
to unbatched scalar draws from the same seed, for any batch size.  That
is what makes a serial run and a ``--jobs N`` run (each worker installs
the seed and rebuilds its streams) produce identical variates.
"""

import numpy as np
import pytest

from repro.sim.rng import (
    DEFAULT_SEED,
    BatchedStream,
    derive,
    install_seed,
    installed_seed,
    make_rng,
    uninstall_seed,
)


@pytest.fixture(autouse=True)
def _clean_seed():
    yield
    uninstall_seed()


def test_install_seed_round_trip():
    assert installed_seed() == DEFAULT_SEED
    install_seed(99)
    assert installed_seed() == 99
    uninstall_seed()
    assert installed_seed() == DEFAULT_SEED


def test_install_seed_rejects_non_int():
    with pytest.raises(TypeError):
        install_seed("42")


def test_derive_is_stable_and_stream_keyed():
    a1 = derive(make_rng(7), 3).uniform(size=4)
    a2 = derive(make_rng(7), 3).uniform(size=4)
    b = derive(make_rng(7), 4).uniform(size=4)
    assert np.array_equal(a1, a2)
    assert not np.array_equal(a1, b)
    with pytest.raises(ValueError):
        derive(make_rng(7), -1)


# -- BatchedStream ---------------------------------------------------------


def test_batched_equals_unbatched_scalar_draws():
    # numpy Generators consume the bit stream identically for one
    # size=n call and n size=1 calls, so batched hand-out must match
    # plain scalar draws exactly.
    n = 1000
    plain = [float(make_rng(11).exponential(5.0, size=1)[0])]  # shape probe
    reference = make_rng(11).exponential(5.0, size=n)
    stream = BatchedStream(make_rng(11), batch=64)
    got = [stream.exponential(5.0) for _ in range(n)]
    assert got == reference.tolist()
    assert plain[0] == got[0]


@pytest.mark.parametrize("batch", [1, 7, 64, 4096])
def test_batch_size_invariance(batch):
    reference = make_rng(3).uniform(0.0, 2.0, size=500)
    stream = BatchedStream(make_rng(3), batch=batch)
    got = [stream.uniform(0.0, 2.0) for _ in range(500)]
    assert got == reference.tolist()


def test_serial_equals_worker_rebuild():
    # The --jobs path: each worker calls install_seed(s) then rebuilds
    # its streams from make_rng(None).  Two independent rebuilds must be
    # draw-for-draw identical to one long serial pass.
    install_seed(1234)
    serial = BatchedStream(derive(make_rng(None), 5), batch=32)
    serial_draws = [serial.exponential(2.0) for _ in range(200)]

    install_seed(1234)  # "worker" re-install
    worker = BatchedStream(derive(make_rng(None), 5), batch=512)
    worker_draws = [worker.exponential(2.0) for _ in range(200)]
    assert serial_draws == worker_draws


def test_per_key_buffers_are_independent():
    # Interleaving two parameterizations must give each key its own
    # cursor (no cross-key buffer mixing).
    stream = BatchedStream(make_rng(5), batch=16)
    a = [stream.exponential(1.0) for _ in range(3)]
    b = [stream.uniform(0.0, 1.0) for _ in range(3)]
    a += [stream.exponential(1.0) for _ in range(3)]
    b += [stream.uniform(0.0, 1.0) for _ in range(3)]
    assert len(set(a)) == 6 and len(set(b)) == 6
    assert all(0.0 <= x < 1.0 for x in b)
    assert all(x >= 0.0 for x in a)


def test_exponential_array_bulk():
    stream = BatchedStream(make_rng(8))
    arr = stream.exponential_array(1000, scale=3.0)
    assert arr.shape == (1000,)
    assert abs(arr.mean() - 3.0) < 0.5
    with pytest.raises(ValueError):
        stream.exponential_array(-1, scale=3.0)


def test_batched_stream_rejects_bad_batch():
    with pytest.raises(ValueError):
        BatchedStream(make_rng(0), batch=0)
