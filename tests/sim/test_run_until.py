"""Edge semantics of ``Environment.run(until=...)`` and ``peek()``.

These pin down the contract the inlined run loop must preserve: strict
``>`` comparison against ``until`` (events exactly at the horizon still
fire), clock advancement on return, and ``peek()`` on an empty or
populated calendar.
"""

import math

import pytest

from repro.sim.engine import Environment, SimulationError


class TestPeek:
    def test_empty_calendar_peeks_infinity(self):
        assert Environment().peek() == math.inf

    def test_peek_returns_earliest_event_time(self):
        env = Environment()
        env.timeout(7.0)
        env.timeout(3.0)
        assert env.peek() == 3.0

    def test_peek_does_not_consume(self):
        env = Environment()
        env.timeout(2.0)
        assert env.peek() == 2.0
        assert env.peek() == 2.0
        env.step()
        assert env.peek() == math.inf

    def test_peek_honours_initial_time_offset(self):
        env = Environment(initial_time=100.0)
        env.timeout(5.0)
        assert env.peek() == 105.0


class TestRunUntil:
    def test_until_in_the_past_raises(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(ValueError, match="in the past"):
            env.run(until=9.0)

    def test_until_equal_to_now_is_a_noop(self):
        env = Environment(initial_time=10.0)
        env.timeout(1.0)
        env.run(until=10.0)
        assert env.now == 10.0
        assert env.peek() == 11.0  # nothing consumed

    def test_event_exactly_at_until_fires(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(5.0)
            fired.append(env.now)

        env.process(proc())
        env.run(until=5.0)
        assert fired == [5.0]
        assert env.now == 5.0

    def test_event_beyond_until_stays_scheduled(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(5.0)
            fired.append(env.now)

        env.process(proc())
        env.run(until=4.0)
        assert fired == []
        assert env.now == 4.0
        env.run()  # drain the rest
        assert fired == [5.0]

    def test_run_until_on_empty_calendar_advances_clock(self):
        env = Environment()
        env.run(until=42.0)
        assert env.now == 42.0

    def test_drained_run_with_until_lands_on_until(self):
        env = Environment()
        env.timeout(1.0)
        env.run(until=10.0)
        assert env.now == 10.0

    def test_unbounded_run_stops_at_last_event(self):
        env = Environment()
        env.timeout(3.0)
        env.timeout(8.0)
        env.run()
        assert env.now == 8.0

    def test_repeated_run_until_resumes(self):
        env = Environment()
        ticks = []

        def clock():
            while True:
                yield env.timeout(1.0)
                ticks.append(env.now)

        env.process(clock())
        env.run(until=3.0)
        assert ticks == [1.0, 2.0, 3.0]
        env.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert env.now == 5.5

    def test_failed_event_still_raises_through_run(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            raise RuntimeError("model bug")

        env.process(proc())
        with pytest.raises(RuntimeError, match="model bug"):
            env.run(until=2.0)

    def test_step_on_empty_calendar_raises(self):
        with pytest.raises(SimulationError, match="empty calendar"):
            Environment().step()
