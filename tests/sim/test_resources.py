"""Unit tests for Resource / Store / PriorityStore."""

import pytest

from repro.sim import Environment, PriorityStore, Resource, Store


def run(env):
    env.run()


class TestResource:
    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_immediate_grant_below_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        granted = []

        def proc(env):
            yield res.request()
            granted.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        run(env)
        assert granted == [0.0, 0.0]
        assert res.in_use == 2
        assert res.available == 0

    def test_waiters_block_until_release(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def holder(env):
            yield res.request()
            log.append(("hold", env.now))
            yield env.timeout(10.0)
            res.release()

        def waiter(env):
            yield env.timeout(1.0)
            yield res.request()
            log.append(("acquire", env.now))
            res.release()

        env.process(holder(env))
        env.process(waiter(env))
        run(env)
        assert log == [("hold", 0.0), ("acquire", 10.0)]

    def test_fifo_ordering_of_waiters(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def holder(env):
            yield res.request()
            yield env.timeout(5.0)
            res.release()

        def waiter(env, tag, delay):
            yield env.timeout(delay)
            yield res.request()
            order.append(tag)
            res.release()

        env.process(holder(env))
        env.process(waiter(env, "first", 1.0))
        env.process(waiter(env, "second", 2.0))
        run(env)
        assert order == ["first", "second"]

    def test_release_without_hold_raises(self):
        env = Environment()
        res = Resource(env)
        with pytest.raises(RuntimeError):
            res.release()

    def test_queue_length_tracks_waiters(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        res.request()
        res.request()
        assert res.queue_length == 2

    def test_cancel_removes_waiter(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        pending = res.request()
        res.cancel(pending)
        assert res.queue_length == 0


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append(item)

        store.put("x")
        env.process(consumer(env))
        run(env)
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(3.0)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        run(env)
        assert got == [(3.0, "late")]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        for i in range(4):
            store.put(i)
        out = []

        def consumer(env):
            for _ in range(4):
                out.append((yield store.get()))

        env.process(consumer(env))
        run(env)
        assert out == [0, 1, 2, 3]

    def test_capacity_blocks_putter(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer(env):
            yield store.put("a")
            times.append(("a", env.now))
            yield store.put("b")
            times.append(("b", env.now))

        def consumer(env):
            yield env.timeout(5.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        run(env)
        assert times == [("a", 0.0), ("b", 5.0)]

    def test_try_put_respects_capacity(self):
        env = Environment()
        store = Store(env, capacity=2)
        assert store.try_put(1)
        assert store.try_put(2)
        assert not store.try_put(3)
        assert len(store) == 2

    def test_try_get_nonblocking(self):
        env = Environment()
        store = Store(env)
        ok, item = store.try_get()
        assert not ok and item is None
        store.put("y")
        ok, item = store.try_get()
        assert ok and item == "y"

    def test_items_snapshot(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert store.items == [1, 2]

    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=0)


class TestPriorityStore:
    def test_pops_lowest_priority_first(self):
        env = Environment()
        store = PriorityStore(env)
        store.put("low", priority=10)
        store.put("high", priority=1)
        store.put("mid", priority=5)
        out = []

        def consumer(env):
            for _ in range(3):
                out.append((yield store.get()))

        env.process(consumer(env))
        run(env)
        assert out == ["high", "mid", "low"]

    def test_ties_break_fifo(self):
        env = Environment()
        store = PriorityStore(env)
        for tag in ("a", "b", "c"):
            store.put(tag, priority=1)
        out = []

        def consumer(env):
            for _ in range(3):
                out.append((yield store.get()))

        env.process(consumer(env))
        run(env)
        assert out == ["a", "b", "c"]

    def test_direct_handoff_to_waiting_getter(self):
        env = Environment()
        store = PriorityStore(env)
        got = []

        def consumer(env):
            got.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        store.put("direct", priority=99)
        env.run()
        assert got == ["direct"]

    def test_try_get(self):
        env = Environment()
        store = PriorityStore(env)
        store.put("only", priority=3)
        ok, item = store.try_get()
        assert ok and item == "only"
        ok, _ = store.try_get()
        assert not ok
