"""Open-loop arrival generators: determinism, statistics, and the driver."""

import numpy as np
import pytest

from repro.sim import (
    BurstyProcess,
    Environment,
    PoissonProcess,
    open_loop,
)
from repro.sim.rng import install_seed, uninstall_seed


@pytest.fixture(autouse=True)
def _clean_seed():
    yield
    uninstall_seed()


# -- construction and validation -------------------------------------------


def test_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        PoissonProcess(0.0)
    with pytest.raises(ValueError):
        PoissonProcess(-1.0)
    with pytest.raises(ValueError):
        BurstyProcess(0.0)


def test_rejects_bad_batch():
    with pytest.raises(ValueError):
        PoissonProcess(1.0, batch=0)


def test_bursty_rejects_cv2_below_one():
    with pytest.raises(ValueError, match="cv2 >= 1"):
        BurstyProcess(1.0, cv2=0.5)


# -- batch-size invariance (the S3 property) -------------------------------


@pytest.mark.parametrize("make", [
    lambda batch: PoissonProcess(0.01, rng=42, batch=batch),
    lambda batch: BurstyProcess(0.01, cv2=4.0, rng=42, batch=batch),
])
@pytest.mark.parametrize("batch", [1, 7, 1000])
def test_gap_stream_batch_invariant(make, batch):
    reference = [make(4096).next_gap() for _ in range(300)]
    got = [make(batch).next_gap() for _ in range(300)]
    assert got == reference


def test_times_equals_scalar_cumsum():
    scalars = PoissonProcess(0.5, rng=1)
    bulk = PoissonProcess(0.5, rng=1)
    gaps = [scalars.next_gap() for _ in range(100)]
    instants = bulk.times(100, start=10.0)
    assert np.allclose(instants, 10.0 + np.cumsum(gaps))


def test_times_continues_after_scalar_draws():
    # Mixing next_gap and times must never replay or skip a draw.
    mixed = PoissonProcess(0.5, rng=9, batch=16)
    first = [mixed.next_gap() for _ in range(5)]
    rest = mixed.times(40)
    straight = PoissonProcess(0.5, rng=9, batch=16)
    all_gaps = [straight.next_gap() for _ in range(45)]
    assert first == all_gaps[:5]
    assert np.allclose(rest, np.cumsum(all_gaps[5:]))
    with pytest.raises(ValueError):
        mixed.times(-1)


def test_installed_seed_reproduces_streams():
    # Worker-rebuild path: same installed seed + same stream id -> the
    # identical arrival schedule, which is what --jobs N relies on.
    install_seed(777)
    a = PoissonProcess(0.1, stream=2).times(200)
    install_seed(777)
    b = PoissonProcess(0.1, stream=2).times(200)
    assert np.array_equal(a, b)


def test_distinct_streams_are_independent():
    a = PoissonProcess(0.1, rng=5, stream=0).times(50)
    b = PoissonProcess(0.1, rng=5, stream=1).times(50)
    assert not np.array_equal(a, b)


# -- distribution sanity ---------------------------------------------------


def test_poisson_mean_rate():
    gaps = PoissonProcess(0.02, rng=0).gaps(200_000)
    assert abs(gaps.mean() - 50.0) / 50.0 < 0.02


@pytest.mark.parametrize("cv2", [1.0, 4.0, 16.0])
def test_bursty_hits_mean_and_cv2(cv2):
    rate = 0.01
    gaps = BurstyProcess(rate, cv2=cv2, rng=0).gaps(400_000)
    mean = gaps.mean()
    got_cv2 = gaps.var() / mean**2
    assert abs(mean - 1.0 / rate) / (1.0 / rate) < 0.03
    assert abs(got_cv2 - cv2) / cv2 < 0.08


def test_bursty_is_burstier_than_poisson():
    poisson = PoissonProcess(0.01, rng=3).gaps(100_000)
    bursty = BurstyProcess(0.01, cv2=8.0, rng=3).gaps(100_000)
    assert bursty.std() > 2.0 * poisson.std()


# -- the open_loop driver --------------------------------------------------


def test_open_loop_requires_stopping_rule():
    env = Environment()
    with pytest.raises(ValueError, match="stopping rule"):
        open_loop(env, PoissonProcess(1.0, rng=0), lambda i, t: None)


def test_open_loop_count():
    env = Environment()
    hits = []
    proc = open_loop(env, PoissonProcess(0.1, rng=0), lambda i, t: hits.append((i, t)), count=50)
    env.run()
    assert proc.value == 50
    assert [i for i, _ in hits] == list(range(50))
    times = [t for _, t in hits]
    assert times == sorted(times)
    assert env.now == times[-1]


def test_open_loop_until():
    env = Environment()
    hits = []
    proc = open_loop(env, PoissonProcess(0.1, rng=0), lambda i, t: hits.append(t), until=500.0)
    env.run()
    assert proc.value == len(hits)
    assert all(t <= 500.0 for t in hits)
    assert len(hits) > 0
    # Open-loop is independent of completions: roughly rate * horizon.
    assert 25 <= len(hits) <= 75


def test_open_loop_start_offset():
    env = Environment()
    hits = []
    open_loop(env, PoissonProcess(0.1, rng=0), lambda i, t: hits.append(t), count=10, start=1000.0)
    env.run()
    assert all(t > 1000.0 for t in hits)


def test_open_loop_keeps_one_pending_timer():
    env = Environment()
    pending_high = []

    def handler(i, t):
        # Driver timer only; the handler itself schedules nothing here.
        pending_high.append(len(env._calendar))

    open_loop(env, PoissonProcess(0.1, rng=0), handler, count=30)
    env.run()
    # At handler time the driver's next timer isn't armed yet; the
    # calendar never accumulates driver state.
    assert max(pending_high) <= 1


@pytest.mark.parametrize("backend", ["heap", "wheel", "auto"])
def test_open_loop_identical_across_backends(backend):
    env = Environment(calendar=backend)
    hits = []
    open_loop(env, BurstyProcess(0.05, cv2=4.0, rng=11), lambda i, t: hits.append(t), count=200)
    env.run()
    ref_env = Environment(calendar="heap")
    ref = []
    open_loop(ref_env, BurstyProcess(0.05, cv2=4.0, rng=11), lambda i, t: ref.append(t), count=200)
    ref_env.run()
    assert hits == ref
