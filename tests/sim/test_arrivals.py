"""Open-loop arrival generators: determinism, statistics, and the driver."""

import numpy as np
import pytest

from repro.sim import (
    BurstyProcess,
    DiurnalProcess,
    Environment,
    PoissonProcess,
    open_loop,
)
from repro.sim.rng import install_seed, uninstall_seed


@pytest.fixture(autouse=True)
def _clean_seed():
    yield
    uninstall_seed()


# -- construction and validation -------------------------------------------


def test_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        PoissonProcess(0.0)
    with pytest.raises(ValueError):
        PoissonProcess(-1.0)
    with pytest.raises(ValueError):
        BurstyProcess(0.0)


def test_rejects_bad_batch():
    with pytest.raises(ValueError):
        PoissonProcess(1.0, batch=0)


def test_bursty_rejects_cv2_below_one():
    with pytest.raises(ValueError, match="cv2 >= 1"):
        BurstyProcess(1.0, cv2=0.5)


# -- batch-size invariance (the S3 property) -------------------------------


@pytest.mark.parametrize("make", [
    lambda batch: PoissonProcess(0.01, rng=42, batch=batch),
    lambda batch: BurstyProcess(0.01, cv2=4.0, rng=42, batch=batch),
])
@pytest.mark.parametrize("batch", [1, 7, 1000])
def test_gap_stream_batch_invariant(make, batch):
    reference = [make(4096).next_gap() for _ in range(300)]
    got = [make(batch).next_gap() for _ in range(300)]
    assert got == reference


def test_times_equals_scalar_cumsum():
    scalars = PoissonProcess(0.5, rng=1)
    bulk = PoissonProcess(0.5, rng=1)
    gaps = [scalars.next_gap() for _ in range(100)]
    instants = bulk.times(100, start=10.0)
    assert np.allclose(instants, 10.0 + np.cumsum(gaps))


def test_times_continues_after_scalar_draws():
    # Mixing next_gap and times must never replay or skip a draw.
    mixed = PoissonProcess(0.5, rng=9, batch=16)
    first = [mixed.next_gap() for _ in range(5)]
    rest = mixed.times(40)
    straight = PoissonProcess(0.5, rng=9, batch=16)
    all_gaps = [straight.next_gap() for _ in range(45)]
    assert first == all_gaps[:5]
    assert np.allclose(rest, np.cumsum(all_gaps[5:]))
    with pytest.raises(ValueError):
        mixed.times(-1)


def test_installed_seed_reproduces_streams():
    # Worker-rebuild path: same installed seed + same stream id -> the
    # identical arrival schedule, which is what --jobs N relies on.
    install_seed(777)
    a = PoissonProcess(0.1, stream=2).times(200)
    install_seed(777)
    b = PoissonProcess(0.1, stream=2).times(200)
    assert np.array_equal(a, b)


def test_distinct_streams_are_independent():
    a = PoissonProcess(0.1, rng=5, stream=0).times(50)
    b = PoissonProcess(0.1, rng=5, stream=1).times(50)
    assert not np.array_equal(a, b)


# -- distribution sanity ---------------------------------------------------


def test_poisson_mean_rate():
    gaps = PoissonProcess(0.02, rng=0).gaps(200_000)
    assert abs(gaps.mean() - 50.0) / 50.0 < 0.02


@pytest.mark.parametrize("cv2", [1.0, 4.0, 16.0])
def test_bursty_hits_mean_and_cv2(cv2):
    rate = 0.01
    gaps = BurstyProcess(rate, cv2=cv2, rng=0).gaps(400_000)
    mean = gaps.mean()
    got_cv2 = gaps.var() / mean**2
    assert abs(mean - 1.0 / rate) / (1.0 / rate) < 0.03
    assert abs(got_cv2 - cv2) / cv2 < 0.08


def test_bursty_is_burstier_than_poisson():
    poisson = PoissonProcess(0.01, rng=3).gaps(100_000)
    bursty = BurstyProcess(0.01, cv2=8.0, rng=3).gaps(100_000)
    assert bursty.std() > 2.0 * poisson.std()


# -- the open_loop driver --------------------------------------------------


def test_open_loop_requires_stopping_rule():
    env = Environment()
    with pytest.raises(ValueError, match="stopping rule"):
        open_loop(env, PoissonProcess(1.0, rng=0), lambda i, t: None)


def test_open_loop_count():
    env = Environment()
    hits = []
    proc = open_loop(env, PoissonProcess(0.1, rng=0), lambda i, t: hits.append((i, t)), count=50)
    env.run()
    assert proc.value == 50
    assert [i for i, _ in hits] == list(range(50))
    times = [t for _, t in hits]
    assert times == sorted(times)
    assert env.now == times[-1]


def test_open_loop_until():
    env = Environment()
    hits = []
    proc = open_loop(env, PoissonProcess(0.1, rng=0), lambda i, t: hits.append(t), until=500.0)
    env.run()
    assert proc.value == len(hits)
    assert all(t <= 500.0 for t in hits)
    assert len(hits) > 0
    # Open-loop is independent of completions: roughly rate * horizon.
    assert 25 <= len(hits) <= 75


def test_open_loop_start_offset():
    env = Environment()
    hits = []
    open_loop(env, PoissonProcess(0.1, rng=0), lambda i, t: hits.append(t), count=10, start=1000.0)
    env.run()
    assert all(t > 1000.0 for t in hits)


def test_open_loop_keeps_one_pending_timer():
    env = Environment()
    pending_high = []

    def handler(i, t):
        # Driver timer only; the handler itself schedules nothing here.
        pending_high.append(len(env._calendar))

    open_loop(env, PoissonProcess(0.1, rng=0), handler, count=30)
    env.run()
    # At handler time the driver's next timer isn't armed yet; the
    # calendar never accumulates driver state.
    assert max(pending_high) <= 1


@pytest.mark.parametrize("backend", ["heap", "wheel", "auto"])
def test_open_loop_identical_across_backends(backend):
    env = Environment(calendar=backend)
    hits = []
    open_loop(env, BurstyProcess(0.05, cv2=4.0, rng=11), lambda i, t: hits.append(t), count=200)
    env.run()
    ref_env = Environment(calendar="heap")
    ref = []
    open_loop(ref_env, BurstyProcess(0.05, cv2=4.0, rng=11), lambda i, t: ref.append(t), count=200)
    ref_env.run()
    assert hits == ref


# -- satellite edge cases: exact horizon, interruption, interleaving -------


def test_open_loop_until_exactly_on_arrival():
    # An arrival landing exactly at the `until` horizon is delivered:
    # the stopping rule is t > until, not t >= until.
    class UnitGaps:
        def next_gap(self):
            return 100.0

    env = Environment()
    hits = []
    proc = open_loop(env, UnitGaps(), lambda i, t: hits.append(t), until=500.0)
    env.run()
    assert hits == [100.0, 200.0, 300.0, 400.0, 500.0]
    assert proc.value == 5


def test_open_loop_handler_interrupts_driver():
    # A handler interrupting the driver mid-run stops the loop cleanly;
    # the process value is the count delivered so far (the interrupting
    # arrival included).
    env = Environment()
    hits = []
    proc = None

    def handler(i, t):
        hits.append(t)
        if i == 9:
            proc.interrupt("enough")

    proc = open_loop(env, PoissonProcess(0.1, rng=0), handler, count=1000)
    env.run()
    assert len(hits) == 10
    assert proc.value == 10
    # The environment keeps running other work after the interrupt.
    after = []
    open_loop(env, PoissonProcess(0.1, rng=1), lambda i, t: after.append(t), count=3)
    env.run()
    assert len(after) == 3


@pytest.mark.parametrize("make", [
    lambda: PoissonProcess(0.01, rng=7),
    lambda: BurstyProcess(0.01, cv2=4.0, rng=7),
    lambda: DiurnalProcess(0.01, period_ns=1e6, amplitude=0.5, rng=7),
])
def test_interleaved_times_and_next_gap_invariant(make):
    # times(n) and next_gap() draw from one cursor: any interleaving
    # yields the same absolute arrival instants as scalar-only draws.
    scalar = make()
    reference, t = [], 0.0
    for _ in range(60):
        t += scalar.next_gap()
        reference.append(t)
    mixed = make()
    got = list(mixed.times(25))
    t = got[-1]
    for _ in range(10):
        t += mixed.next_gap()
        got.append(t)
    got.extend(mixed.times(25, start=t))
    np.testing.assert_allclose(got, reference, rtol=1e-12)


# -- BurstyProcess hardening (cv2 == 1 delegation, NaN rejection) ----------


def test_bursty_cv2_one_matches_poisson_exactly():
    poisson = PoissonProcess(0.02, rng=5)
    bursty = BurstyProcess(0.02, cv2=1.0, rng=5)
    assert [bursty.next_gap() for _ in range(200)] == [
        poisson.next_gap() for _ in range(200)
    ]


def test_bursty_rejects_nan_cv2():
    with pytest.raises(ValueError, match="cv2 >= 1"):
        BurstyProcess(1.0, cv2=float("nan"))


# -- DiurnalProcess ---------------------------------------------------------


def test_diurnal_validates_envelope():
    with pytest.raises(ValueError, match="period_ns"):
        DiurnalProcess(1.0, period_ns=0.0)
    with pytest.raises(ValueError, match="amplitude"):
        DiurnalProcess(1.0, period_ns=1e6, amplitude=1.0)
    with pytest.raises(ValueError, match="amplitude"):
        DiurnalProcess(1.0, period_ns=1e6, amplitude=-0.1)


@pytest.mark.parametrize("batch", [1, 7, 1000])
def test_diurnal_batch_invariant(batch):
    reference = DiurnalProcess(0.01, period_ns=1e5, amplitude=0.8, rng=3, batch=4096)
    got = DiurnalProcess(0.01, period_ns=1e5, amplitude=0.8, rng=3, batch=batch)
    ref_gaps = [reference.next_gap() for _ in range(300)]
    gaps = [got.next_gap() for _ in range(300)]
    np.testing.assert_allclose(gaps, ref_gaps, rtol=1e-12)


def test_diurnal_rate_tracks_envelope():
    # Arrivals cluster where the sinusoid peaks: the densest
    # quarter-period must see more arrivals than the sparsest.
    proc = DiurnalProcess(0.01, period_ns=1e6, amplitude=0.9, rng=9)
    times = list(proc.times(4000))
    period = 1e6
    quarters = [0, 0, 0, 0]
    for t in times:
        quarters[int((t % period) / (period / 4))] += 1
    # sin peaks in the first quarter and troughs in the third.
    assert quarters[0] > quarters[2] * 1.5
