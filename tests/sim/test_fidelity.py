"""Fidelity-tier tests: policy install, planning, detection, batching.

Pins the tiered-executor contract: the default ``des`` tier is
byte-identical to not having the tier at all, ``auto`` engages only on
detected steady state (and within ``DECLARED_TOLERANCE`` of the DES
when it does), and every rejection path — short runs, drifting or
aliased completion streams, installed fault injectors, rate-bound
violations — falls back to full per-event simulation.
"""

import math

import pytest

from repro.dsa.opcodes import Opcode
from repro.faults import FaultPlan, injection
from repro.mem.link import FairShareLink
from repro.obs import MetricsRegistry, install_metrics, uninstall_metrics
from repro.platform import spr_platform
from repro.sim import Environment, SimulationError
from repro.sim.batch import cycle_samples
from repro.sim.fidelity import (
    DECLARED_TOLERANCE,
    FidelityMode,
    FidelityPolicy,
    SteadyStateDetector,
    active_fidelity,
    analytical_rate_bound,
    fidelity,
    install_fidelity,
    plan_closed_loop,
    uninstall_fidelity,
)
from repro.sim.rng import DEFAULT_SEED, install_seed, uninstall_seed
from repro.sim.stats import Histogram
from repro.obs.streaming import StreamingHistogram
from repro.workloads.microbench import (
    MicrobenchConfig,
    run_dsa_microbench,
    run_software_microbench,
)

KB = 1024


@pytest.fixture(autouse=True)
def _clean_installs():
    """Every test starts and ends with no policy/seed/metrics installed."""
    uninstall_fidelity()
    yield
    uninstall_fidelity()
    uninstall_metrics()
    uninstall_seed()


def _seeded(fn, cfg, mode=None):
    """Run a microbench under the default seed and optional fidelity mode."""
    install_seed(DEFAULT_SEED)
    try:
        if mode is None:
            return fn(cfg)
        with fidelity(mode):
            return fn(cfg)
    finally:
        uninstall_seed()


class TestPolicyInstall:
    def test_nothing_installed_by_default(self):
        assert active_fidelity() is None

    def test_install_and_uninstall(self):
        policy = install_fidelity("auto")
        assert policy.mode is FidelityMode.AUTO
        assert active_fidelity() is policy
        uninstall_fidelity()
        assert active_fidelity() is None

    def test_des_mode_reports_inactive(self):
        # The default tier must behave as if the module did not exist.
        install_fidelity("des")
        assert active_fidelity() is None

    def test_context_manager_restores_previous(self):
        install_fidelity("analytical")
        with fidelity("auto") as inner:
            assert inner.mode is FidelityMode.AUTO
            assert active_fidelity() is inner
        assert active_fidelity().mode is FidelityMode.ANALYTICAL

    def test_analytical_gates_are_looser(self):
        auto = FidelityPolicy.for_mode("auto")
        analytical = FidelityPolicy.for_mode(FidelityMode.ANALYTICAL)
        assert analytical.max_rate_drift > auto.max_rate_drift
        assert analytical.max_wave_drift > auto.max_wave_drift
        assert analytical.rate_guard > auto.rate_guard
        assert not FidelityPolicy.for_mode("des").batching_enabled


class TestPlanning:
    def test_sync_plan_shape(self):
        policy = FidelityPolicy.for_mode("auto")
        plan = plan_closed_loop(30, 1, policy)
        assert plan.ramp == max(policy.min_ramp, 1)
        assert plan.window == policy.min_window
        assert plan.guard == 1
        assert plan.pilot_iterations + plan.batched == 30

    def test_window_rounds_to_completion_waves(self):
        plan = plan_closed_loop(4000, 32, FidelityPolicy.for_mode("auto"))
        assert plan.window == 32          # one wave of queue_depth
        assert plan.guard == 32           # drain guard = queue_depth
        assert plan.ramp == 32

    def test_short_runs_are_not_batched(self):
        policy = FidelityPolicy.for_mode("auto")
        pilot = plan_closed_loop(10_000, 1, policy).pilot_iterations
        too_short = pilot + policy.min_batched - 1
        assert plan_closed_loop(too_short, 1, policy) is None
        assert plan_closed_loop(too_short + 1, 1, policy) is not None

    def test_deep_queues_past_window_cap_refused(self):
        policy = FidelityPolicy.for_mode("auto")
        assert plan_closed_loop(100_000, policy.window_cap + 1, policy) is None

    def test_des_policy_never_plans(self):
        assert plan_closed_loop(100_000, 1, FidelityPolicy.for_mode("des")) is None


def _detector_from_gaps(gaps, latency=50.0):
    det = SteadyStateDetector(1)
    now = 0.0
    for gap in gaps:
        now += gap
        det.on_complete(0, now, latency)
    return det


class TestSteadyStateDetector:
    def test_periodic_stream_is_steady(self):
        det = _detector_from_gaps([10.0] * 12)
        window = det.window_of(0, start=2, window=4)
        assert window.gap_ns == pytest.approx(10.0)
        assert window.rate_drift == pytest.approx(0.0)
        assert window.wave_drift == pytest.approx(0.0)
        assert window.is_steady(FidelityPolicy.for_mode("auto"))

    def test_decelerating_stream_is_rejected(self):
        gaps = [10.0 * 1.05**i for i in range(12)]
        window = det = _detector_from_gaps(gaps).window_of(0, start=2, window=4)
        assert window.rate_drift > 0.05
        assert not window.is_steady(FidelityPolicy.for_mode("auto"))

    def test_aliased_longer_period_is_rejected(self):
        # Period-4 stream sampled with window 2: both windows sum to 40
        # (means alias to equality) but the wave shapes disagree — the
        # fig4 WQS4 failure mode this gate exists for.
        det = _detector_from_gaps([20.0, 20.0, 10.0, 30.0] * 3)
        window = det.window_of(0, start=2, window=2)
        assert window.rate_drift == pytest.approx(0.0)
        assert window.wave_drift == pytest.approx(0.5)
        assert not window.is_steady(FidelityPolicy.for_mode("auto"))

    def test_unformable_windows_return_none(self):
        det = _detector_from_gaps([10.0] * 6)
        assert det.window_of(0, start=0, window=2) is None   # needs a prior time
        assert det.window_of(0, start=2, window=4) is None   # not enough samples
        assert det.window_of(0, start=2, window=2) is not None


class TestAdvanceTo:
    def test_advances_clock_without_events(self):
        env = Environment()
        assert env.advance_to(125.0) == 125.0
        assert env.now == 125.0

    def test_rejects_travel_into_the_past(self):
        env = Environment()
        env.advance_to(10.0)
        with pytest.raises(ValueError):
            env.advance_to(5.0)

    def test_refuses_to_skip_live_events(self):
        env = Environment()
        env.timeout(50.0)
        with pytest.raises(SimulationError):
            env.advance_to(100.0)
        assert env.advance_to(50.0) == 50.0   # up to the event is fine

    def test_cancelled_entries_do_not_block(self):
        env = Environment()
        env.timeout(50.0).cancel()
        assert env.advance_to(100.0) == 100.0


class TestRateOf:
    def test_idle_link_offers_full_bandwidth(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=30.0)
        assert link.rate_of() == pytest.approx(30.0)

    def test_idle_rate_respects_per_flow_cap(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=30.0, per_flow_cap=8.0)
        assert link.rate_of() == pytest.approx(8.0)

    def test_contended_rate_is_fair_share(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=30.0)
        link.transfer(1e6)
        assert link.rate_of() == pytest.approx(15.0)
        assert link.rate_of(weight=2.0) == pytest.approx(20.0)

    def test_query_does_not_disturb_the_link(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0)
        done = []
        event = link.transfer(1000.0)
        event.callbacks.append(lambda ev: done.append(env.now))
        for _ in range(5):
            link.rate_of()
        env.run()
        assert done == [pytest.approx(100.0)]

    def test_non_positive_weight_rejected(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0)
        with pytest.raises(ValueError):
            link.rate_of(weight=0.0)


class TestAddRepeated:
    def test_exact_histogram_matches_loop(self):
        loop, bulk = Histogram(), Histogram()
        for _ in range(7):
            loop.add(3.5)
        bulk.add_repeated(3.5, 7)
        assert len(bulk) == len(loop)
        assert bulk.mean == pytest.approx(loop.mean)
        assert bulk.percentile(99.0) == loop.percentile(99.0)

    def test_streaming_histogram_matches_loop(self):
        loop, bulk = StreamingHistogram(), StreamingHistogram()
        for _ in range(1000):
            loop.add(42.0)
        bulk.add_repeated(42.0, 1000)
        assert bulk.count == loop.count
        assert bulk.mean == pytest.approx(loop.mean)
        assert bulk.percentile(50.0) == pytest.approx(loop.percentile(50.0))

    def test_zero_count_is_noop_negative_raises(self):
        hist = Histogram()
        hist.add_repeated(1.0, 0)
        assert len(hist) == 0
        with pytest.raises(ValueError):
            hist.add_repeated(1.0, -1)
        with pytest.raises(ValueError):
            StreamingHistogram().add_repeated(1.0, -1)


class TestCycleSamples:
    def test_cycles_through_short_sample_sets(self):
        assert cycle_samples([1.0, 2.0, 3.0], 7) == [1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]
        assert cycle_samples([5.0], 3) == [5.0, 5.0, 5.0]
        assert cycle_samples([1.0, 2.0], 0) == []


class TestRateBound:
    def test_no_devices_is_unbounded(self):
        platform = spr_platform(n_devices=0)
        assert analytical_rate_bound(platform, Opcode.MEMMOVE, 4 * KB) == math.inf

    def test_bound_is_finite_and_port_limited_for_large_transfers(self):
        platform = spr_platform(n_devices=1)
        small = analytical_rate_bound(platform, Opcode.MEMMOVE, 4 * KB)
        large = analytical_rate_bound(platform, Opcode.MEMMOVE, 1024 * KB)
        assert 0.0 < large < small < math.inf

    def test_measured_steady_rate_respects_the_bound(self):
        cfg = MicrobenchConfig(transfer_size=64 * KB, queue_depth=32, iterations=200)
        result = _seeded(run_dsa_microbench, cfg)
        platform = spr_platform(n_devices=1)
        bound = analytical_rate_bound(platform, cfg.opcode, cfg.transfer_size)
        measured = result.operations / result.elapsed_ns
        assert measured <= bound * 1.01


def _counters():
    registry = MetricsRegistry()
    install_metrics(registry)
    return registry


class TestDsaDifferential:
    def _assert_close(self, des, auto, tolerance=DECLARED_TOLERANCE):
        assert auto.throughput == pytest.approx(des.throughput, rel=tolerance)
        assert auto.mean_latency_ns == pytest.approx(des.mean_latency_ns, rel=tolerance)
        assert auto.latency.percentile(99.0) == pytest.approx(
            des.latency.percentile(99.0), rel=tolerance
        )
        assert auto.operations == des.operations
        assert auto.payload_bytes == des.payload_bytes

    def test_sync_auto_matches_des_and_engages(self):
        cfg = MicrobenchConfig(transfer_size=64 * KB, queue_depth=1, iterations=60)
        des = _seeded(run_dsa_microbench, cfg)
        registry = _counters()
        auto = _seeded(run_dsa_microbench, cfg, mode="auto")
        assert registry.counter("fidelity.regions_batched").value >= 1
        self._assert_close(des, auto)

    def test_async_auto_matches_des(self):
        cfg = MicrobenchConfig(transfer_size=64 * KB, queue_depth=32, iterations=200)
        des = _seeded(run_dsa_microbench, cfg)
        registry = _counters()
        auto = _seeded(run_dsa_microbench, cfg, mode="auto")
        assert registry.counter("fidelity.regions_batched").value >= 1
        self._assert_close(des, auto)

    def test_des_mode_is_byte_identical(self):
        cfg = MicrobenchConfig(transfer_size=4 * KB, queue_depth=1, iterations=40)
        plain = _seeded(run_dsa_microbench, cfg)
        explicit = _seeded(run_dsa_microbench, cfg, mode="des")
        assert explicit.throughput == plain.throughput
        assert explicit.elapsed_ns == plain.elapsed_ns
        assert explicit.latency.values == plain.latency.values

    def test_installed_injector_forces_full_des(self):
        cfg = MicrobenchConfig(transfer_size=4 * KB, queue_depth=1, iterations=60)
        registry = _counters()
        install_seed(DEFAULT_SEED)
        try:
            with injection(FaultPlan(seed=7, page_fault_rate=0.01)):
                with fidelity("auto"):
                    run_dsa_microbench(cfg)
        finally:
            uninstall_seed()
        assert registry.counter("fidelity.regions_batched").value == 0

    def test_shared_platform_forces_full_des(self):
        cfg = MicrobenchConfig(transfer_size=4 * KB, queue_depth=1, iterations=60)
        registry = _counters()
        install_seed(DEFAULT_SEED)
        try:
            with fidelity("auto"):
                run_dsa_microbench(cfg, platform=spr_platform(n_devices=1))
        finally:
            uninstall_seed()
        assert registry.counter("fidelity.regions_batched").value == 0


class TestSoftwareAnalytical:
    def test_closed_form_matches_des(self):
        cfg = MicrobenchConfig(transfer_size=64 * KB, queue_depth=1, iterations=50)
        des = _seeded(run_software_microbench, cfg)
        registry = _counters()
        auto = _seeded(run_software_microbench, cfg, mode="auto")
        assert registry.counter("fidelity.regions_batched").value == 1
        assert auto.operations == des.operations
        assert auto.throughput == pytest.approx(des.throughput, rel=1e-9)
        assert auto.mean_latency_ns == pytest.approx(des.mean_latency_ns, rel=1e-9)

    def test_umwait_fraction_survives_scaling(self):
        # Uniform core-cycle scaling must preserve ratio metrics.
        from repro.runtime.wait import WaitMode

        cfg = MicrobenchConfig(
            transfer_size=4 * KB, queue_depth=1, iterations=60, wait_mode=WaitMode.UMWAIT
        )
        des = _seeded(run_dsa_microbench, cfg)
        auto = _seeded(run_dsa_microbench, cfg, mode="auto")
        assert auto.umwait_fraction() == pytest.approx(des.umwait_fraction(), rel=0.05)
