"""Unit tests for the measurement utilities."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim import Histogram, OnlineStat, TimeWeightedStat


class TestOnlineStat:
    def test_empty(self):
        stat = OnlineStat()
        assert stat.count == 0
        assert stat.mean == 0.0
        assert stat.variance == 0.0

    def test_known_values(self):
        stat = OnlineStat()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            stat.add(v)
        assert stat.mean == pytest.approx(5.0)
        assert stat.minimum == 2.0
        assert stat.maximum == 9.0
        assert stat.stdev == pytest.approx(math.sqrt(32 / 7))

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_matches_batch_mean(self, values):
        stat = OnlineStat()
        for v in values:
            stat.add(v)
        assert stat.mean == pytest.approx(sum(values) / len(values), abs=1e-6)
        assert stat.minimum == min(values)
        assert stat.maximum == max(values)


class TestTimeWeightedStat:
    def test_constant_signal(self):
        tw = TimeWeightedStat(initial=3.0)
        assert tw.mean(now=10.0) == 3.0

    def test_step_signal(self):
        tw = TimeWeightedStat()
        tw.update(5.0, 10.0)  # level 0 for [0,5), then 10
        assert tw.mean(now=10.0) == pytest.approx(5.0)

    def test_maximum_tracked(self):
        tw = TimeWeightedStat()
        tw.update(1.0, 7.0)
        tw.update(2.0, 3.0)
        assert tw.maximum == 7.0

    def test_time_backwards_rejected(self):
        tw = TimeWeightedStat()
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 2.0)

    def test_restart_epoch_resets_mean_carries_level_and_max(self):
        tw = TimeWeightedStat()
        tw.update(10.0, 8.0)   # level 0 over [0, 10), then 8
        tw.update(20.0, 2.0)   # mean so far: (0*10 + 8*10) / 20 = 4
        assert tw.mean() == pytest.approx(4.0)
        tw.restart_epoch(0.0)  # a new simulation's clock starts at zero
        assert tw.level == 2.0       # level carries over
        assert tw.maximum == 8.0     # maximum carries over
        assert tw.last_time == 0.0
        assert tw.elapsed == 0.0
        tw.update(10.0, 2.0)
        assert tw.mean() == pytest.approx(2.0)  # old epoch's area is gone

    def test_restart_epoch_promotes_live_level_into_maximum(self):
        tw = TimeWeightedStat()
        tw.update(5.0, 9.0)
        # The level live at epoch end counts toward the maximum even
        # though no later update ever observed it.
        tw.restart_epoch(0.0)
        assert tw.maximum == 9.0

    def test_state_round_trip(self):
        tw = TimeWeightedStat()
        tw.update(4.0, 6.0)
        tw.update(9.0, 1.0)
        clone = TimeWeightedStat.from_state(tw.state())
        assert clone.level == tw.level
        assert clone.maximum == tw.maximum
        assert clone.mean() == pytest.approx(tw.mean())
        assert clone.elapsed == tw.elapsed

    @given(st.lists(st.tuples(st.floats(0.01, 10.0), st.floats(0, 100)), min_size=1, max_size=50))
    def test_mean_is_bounded_by_levels(self, steps):
        tw = TimeWeightedStat()
        now = 0.0
        levels = [0.0]
        for dt, level in steps:
            now += dt
            tw.update(now, level)
            levels.append(level)
        mean = tw.mean(now + 1.0)
        assert min(levels) - 1e-9 <= mean <= max(levels) + 1e-9


class TestHistogram:
    def test_empty_summary(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert hist.summary() == {
            "count": 0.0, "mean": 0.0, "min": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0,
        }

    def test_empty_percentile_raises(self):
        # Regression: this used to silently answer 0.0, which reads as
        # a perfect tail latency.  Empty percentiles are undefined.
        with pytest.raises(ValueError, match="empty histogram"):
            Histogram().percentile(99)
        hist = Histogram()
        hist.add(5.0)
        assert hist.percentile(99) == 5.0

    def test_percentiles_exact(self):
        hist = Histogram()
        hist.extend(range(1, 101))  # 1..100
        assert hist.percentile(50) == 50
        assert hist.percentile(99) == 99
        assert hist.percentile(100) == 100
        assert hist.percentile(1) == 1

    def test_percentile_out_of_range(self):
        hist = Histogram()
        hist.add(1.0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_count_below(self):
        hist = Histogram()
        hist.extend([1, 2, 3, 4, 5])
        assert hist.count_below(3) == 3
        assert hist.count_below(0.5) == 0

    def test_summary_keys(self):
        hist = Histogram()
        hist.extend([1.0, 2.0, 3.0])
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_merge_is_exact(self):
        left, right, whole = Histogram(), Histogram(), Histogram()
        left.extend([5.0, 1.0, 9.0])
        right.extend([2.0, 8.0])
        whole.extend([5.0, 1.0, 9.0, 2.0, 8.0])
        left.merge(right)
        assert left.values == whole.values
        assert left.mean == pytest.approx(whole.mean)
        assert left.percentile(99) == whole.percentile(99)

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=300))
    def test_max_percentile_is_max(self, values):
        hist = Histogram()
        hist.extend(values)
        assert hist.percentile(100) == max(values)
        assert hist.minimum == min(values)
