"""Timing-wheel calendar: unit, differential, pooling, and backend tests.

The load-bearing property is *order identity*: for any schedule —
including cancellations and same-timestamp ties — the wheel backend
must process events in exactly the heap backend's order.  The
differential tests drive both backends over randomized schedules and
compare the full processing order; the unit tests pin the wheel's
internal mechanics (calibration, cascades, compaction, the same-slot
insort during a drain).
"""

import random

import pytest

import repro.sim.calendar as calendar_mod
import repro.sim.engine as engine_mod
from repro.sim import (
    AUTO_PROMOTE_THRESHOLD,
    CALENDAR_BACKENDS,
    Environment,
    SimulationError,
    TimingWheel,
    default_calendar,
    set_default_calendar,
)
from repro.sim.engine import CALENDAR_COMPACT_THRESHOLD

BACKENDS = list(CALENDAR_BACKENDS)


# -- TimingWheel unit tests -------------------------------------------------


def entry(when, prio=1, seq=0, tag=None):
    return (when, prio, seq, tag)


def drain(wheel):
    out = []
    while True:
        popped = wheel.pop_due(float("inf"))
        if popped is None:
            return out
        out.append(popped)


def test_wheel_pops_in_heap_order_with_explicit_tick():
    wheel = TimingWheel(tick=1.0)
    entries = [entry(5.0, seq=1), entry(2.0, seq=2), entry(5.0, 0, 3), entry(2.0, seq=0)]
    for e in entries:
        wheel.push(e)
    assert len(wheel) == 4
    assert drain(wheel) == sorted(entries, key=lambda e: e[:3])
    assert len(wheel) == 0


def test_wheel_fifo_tie_break_within_one_slot():
    wheel = TimingWheel(tick=100.0)  # everything lands in one bucket
    entries = [entry(1.0, seq=s) for s in (3, 1, 2, 0)]
    for e in entries:
        wheel.push(e)
    assert [e[2] for e in drain(wheel)] == [0, 1, 2, 3]


def test_wheel_calibrates_on_first_pop():
    wheel = TimingWheel()
    for s in range(100):
        wheel.push(entry(float(s), seq=s))
    assert wheel.tick is None  # below CALIBRATE_AT: still buffering
    first = wheel.pop_due(float("inf"))
    assert first == entry(0.0, seq=0)
    assert wheel.tick is not None and wheel.tick > 0


def test_wheel_calibrates_at_buffer_threshold():
    wheel = TimingWheel()
    n = calendar_mod.CALIBRATE_AT
    for s in range(n):
        wheel.push(entry(float(s), seq=s))
    assert wheel.tick is not None
    # Pushes after calibration bin directly and stay ordered.
    wheel.push(entry(0.5, seq=n))
    got = drain(wheel)
    assert len(got) == n + 1
    assert got == sorted(got, key=lambda e: e[:3])


def test_wheel_empty_pop_and_peek():
    wheel = TimingWheel()
    assert wheel.pop_due(float("inf")) is None
    assert wheel.peek() is None
    assert len(wheel) == 0


def test_wheel_pop_due_respects_limit():
    wheel = TimingWheel(tick=1.0)
    wheel.push(entry(10.0))
    assert wheel.pop_due(5.0) is None
    assert len(wheel) == 1  # not consumed
    assert wheel.pop_due(10.0) == entry(10.0)
    assert len(wheel) == 0


def test_wheel_peek_does_not_consume():
    wheel = TimingWheel(tick=1.0)
    wheel.push(entry(3.0))
    assert wheel.peek() == entry(3.0)
    assert wheel.peek() == entry(3.0)
    assert len(wheel) == 1
    assert wheel.pop_due(float("inf")) == entry(3.0)


def test_wheel_same_slot_push_during_drain():
    # Pushing into the bucket currently being drained must land at the
    # sorted position at-or-after the cursor (the delay-zero / same-tick
    # re-arm case).
    wheel = TimingWheel(tick=1000.0)  # one bucket for everything
    for s in range(4):
        wheel.push(entry(float(s), seq=s))
    got = [wheel.pop_due(float("inf")), wheel.pop_due(float("inf"))]
    # Mid-drain: insert between the remaining entries (2.0 and 3.0).
    wheel.push(entry(2.5, seq=9))
    got.extend(drain(wheel))
    assert [e[0] for e in got] == [0.0, 1.0, 2.0, 2.5, 3.0]


def test_wheel_coarse_cascade():
    # With tick=1.0, slots >= SLOTS_PER_LEVEL past the base go coarse.
    wheel = TimingWheel(tick=1.0)
    span = calendar_mod.SLOTS_PER_LEVEL
    times = [1.0, 2.0, float(span + 5), float(span + 3), float(3 * span + 1)]
    for s, t in enumerate(times):
        wheel.push(entry(t, seq=s))
    assert wheel._coarse  # something actually routed to level 1
    got = [e[0] for e in drain(wheel)]
    assert got == sorted(times)


def test_wheel_far_overflow_rebins():
    wheel = TimingWheel(tick=1.0)
    span = calendar_mod.SLOTS_PER_LEVEL
    far_time = float(span) * span * 2  # beyond the coarse horizon
    wheel.push(entry(1.0, seq=0))
    wheel.push(entry(far_time, seq=1))
    assert wheel._far
    got = [e[0] for e in drain(wheel)]
    assert got == [1.0, far_time]


def test_wheel_compact_drops_dead_across_levels():
    wheel = TimingWheel(tick=1.0)
    span = calendar_mod.SLOTS_PER_LEVEL
    live = [entry(2.0, seq=0, tag="live"), entry(float(span + 2), seq=2, tag="live")]
    dead = [
        entry(3.0, seq=1, tag="dead"),
        entry(float(span + 7), seq=3, tag="dead"),
        entry(float(span) * span * 3, seq=4, tag="dead"),
    ]
    for e in live + dead:
        wheel.push(e)
    removed = wheel.compact(lambda e: e[3] == "dead")
    assert removed == len(dead)
    assert len(wheel) == len(live)
    assert drain(wheel) == sorted(live, key=lambda e: e[:3])


def test_wheel_compact_uncalibrated_buffer():
    wheel = TimingWheel()
    wheel.push(entry(1.0, tag="live"))
    wheel.push(entry(2.0, tag="dead"))
    assert wheel.compact(lambda e: e[3] == "dead") == 1
    assert [e[0] for e in drain(wheel)] == [1.0]


def test_wheel_compact_preserves_drain_cursor():
    wheel = TimingWheel(tick=1000.0)
    for s in range(6):
        wheel.push(entry(float(s), seq=s, tag="dead" if s in (3, 4) else "live"))
    assert wheel.pop_due(float("inf"))[0] == 0.0  # start draining the bucket
    removed = wheel.compact(lambda e: e[3] == "dead")
    assert removed == 2
    assert [e[0] for e in drain(wheel)] == [1.0, 2.0, 5.0]


def test_wheel_rejects_bad_params():
    with pytest.raises(ValueError):
        TimingWheel(tick=0.0)
    with pytest.raises(ValueError):
        TimingWheel(tick=-1.0)
    with pytest.raises(ValueError):
        TimingWheel(target_occupancy=0.0)


# -- backend selection -----------------------------------------------------


def test_default_backend_is_heap():
    assert default_calendar() == "heap"
    env = Environment()
    assert env.calendar_backend == "heap"
    assert not env.using_wheel


def test_set_default_calendar_round_trip():
    try:
        set_default_calendar("wheel")
        assert default_calendar() == "wheel"
        env = Environment()
        assert env.calendar_backend == "wheel"
        assert env.using_wheel
    finally:
        set_default_calendar("heap")
    assert default_calendar() == "heap"


def test_set_default_calendar_rejects_unknown():
    with pytest.raises(ValueError, match="unknown calendar backend"):
        set_default_calendar("btree")
    assert default_calendar() == "heap"


def test_environment_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown calendar backend"):
        Environment(calendar="btree")


def test_explicit_backend_overrides_default():
    env = Environment(calendar="wheel")
    assert env.calendar_backend == "wheel"
    assert env.using_wheel


# -- differential: wheel must replay the heap's exact order ----------------


def _run_schedule(backend, seed, n_timers=600, n_cancel=180, n_procs=8):
    """Run a randomized timer/cancel/process schedule; return the trace."""
    rng = random.Random(seed)
    env = Environment(calendar=backend)
    order = []

    timers = []
    for i in range(n_timers):
        delay = rng.choice([0.0, rng.uniform(0.0, 50.0), rng.uniform(0.0, 5000.0)])
        ev = env.timeout(delay, value=i)
        ev.callbacks.append(lambda e: order.append(("t", e._value, env.now)))
        timers.append(ev)
    for ev in rng.sample(timers, n_cancel):
        ev.cancel()

    def proc(pid, hops):
        for h in range(hops):
            yield env.timeout(rng.uniform(0.0, 100.0))
            order.append(("p", pid, h, env.now))

    # Per-process hop counts drawn before the run so both backends see
    # identical generator behavior (env-time draws would otherwise
    # depend on interleaving — which is exactly what must match anyway).
    for pid in range(n_procs):
        env.process(proc(pid, rng.randint(1, 12)))
    env.run()
    return order, env.now, env.stale_timers, env.cancelled_events


@pytest.mark.parametrize("seed", range(8))
def test_wheel_matches_heap_order_randomized(seed):
    heap_trace = _run_schedule("heap", seed)
    wheel_trace = _run_schedule("wheel", seed)
    assert wheel_trace == heap_trace


def test_auto_matches_heap_order_after_promotion(monkeypatch):
    monkeypatch.setattr(engine_mod, "AUTO_PROMOTE_THRESHOLD", 64)
    heap_trace = _run_schedule("heap", 1234)
    auto_trace = _run_schedule("auto", 1234)
    assert auto_trace == heap_trace


def test_wheel_matches_heap_under_run_until():
    def run(backend):
        env = Environment(calendar=backend)
        hits = []
        for i in range(200):
            env.timeout(float(i), value=i).callbacks.append(
                lambda e: hits.append(e._value)
            )
        env.run(until=99.5)
        return hits, env.now

    assert run("wheel") == run("heap")


def test_wheel_run_until_with_cancelled_far_head():
    # A cancelled entry beyond `until` must still let the clock settle
    # at `until` without firing (mirrors the heap head-check contract).
    env = Environment(calendar="wheel")
    ev = env.timeout(100.0)
    env.timeout(1.0)
    ev.cancel()
    env.run(until=50.0)
    assert env.now == 50.0
    assert len(env._wheel) == 1  # cancelled entry still parked


# -- auto promotion --------------------------------------------------------


def test_auto_promotes_past_threshold(monkeypatch):
    monkeypatch.setattr(engine_mod, "AUTO_PROMOTE_THRESHOLD", 32)
    env = Environment(calendar="auto")
    assert not env.using_wheel
    for i in range(40):
        env.timeout(float(i))
    assert env.using_wheel  # promoted mid-scheduling
    assert env._calendar == []  # heap emptied in place
    assert len(env._wheel) == 40
    env.run()
    assert env.now == 39.0


def test_auto_promotion_drops_cancelled_as_stale(monkeypatch):
    monkeypatch.setattr(engine_mod, "AUTO_PROMOTE_THRESHOLD", 32)
    env = Environment(calendar="auto")
    doomed = [env.timeout(float(i)) for i in range(20)]
    for ev in doomed[:10]:
        ev.cancel()
    for i in range(20):  # push past the threshold -> promote
        env.timeout(100.0 + i)
    assert env.using_wheel
    assert env.stale_timers == 10
    assert len(env._wheel) == 30
    env.run()
    assert env.now == 119.0


def test_auto_stays_on_heap_below_threshold():
    env = Environment(calendar="auto")
    for i in range(100):  # far below the real threshold
        env.timeout(float(i))
    assert not env.using_wheel
    env.run()
    assert env.now == 99.0
    assert env.calendar_backend == "auto"


def test_auto_promotes_mid_run(monkeypatch):
    # A process that fans out past the threshold *while running* must
    # flip the backend and keep draining seamlessly.
    monkeypatch.setattr(engine_mod, "AUTO_PROMOTE_THRESHOLD", 32)
    env = Environment(calendar="auto")
    fired = []

    def fanout(env):
        yield env.timeout(1.0)
        for i in range(64):
            env.timeout(2.0 + i, value=i).callbacks.append(
                lambda e: fired.append(e._value)
            )

    env.process(fanout(env))
    env.run()
    assert env.using_wheel
    assert fired == list(range(64))
    assert env.now == 1.0 + 2.0 + 63.0  # fan-out armed at t=1


# -- timeout pooling -------------------------------------------------------


def test_timeout_pool_recycles_objects():
    env = Environment()

    def proc(env):
        for _ in range(50):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    # The run loop retires each fired timeout back to the free list.
    assert len(env._timeout_pool) >= 1

    def proc2(env):
        for _ in range(10):
            yield env.timeout(1.0)

    before = len(env._timeout_pool)
    env.process(proc2(env))
    env.run()
    # Steady state: reuse, no net pool growth beyond one in flight.
    assert len(env._timeout_pool) <= before + 1


def test_timeout_pool_reuses_identity_and_resets_value():
    env = Environment()
    seen = []

    def proc(env):
        v = yield env.timeout(1.0, value="a")
        seen.append(v)
        v = yield env.timeout(1.0)
        seen.append(v)

    env.process(proc(env))
    env.run()
    assert seen == ["a", None]  # value reset on reuse, not sticky


def test_timeout_pool_disabled():
    env = Environment(timeout_pool=0)

    def proc(env):
        for _ in range(20):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert env._timeout_pool == []


def test_timeout_pool_rejects_negative():
    with pytest.raises(ValueError):
        Environment(timeout_pool=-1)


def test_timeout_pool_skips_held_references():
    env = Environment()
    held = [env.timeout(float(i)) for i in range(10)]
    env.run()
    # Model code still holds these timeouts; none may be recycled.
    assert env._timeout_pool == []
    assert all(ev.processed for ev in held)


def test_timeout_pool_recycles_cancelled_discards():
    env = Environment()
    for i in range(10):
        env.timeout(float(i)).cancel()
    env.timeout(100.0)
    env.run()
    assert env.now == 100.0
    assert len(env._timeout_pool) >= 9  # discarded entries were recycled
    # Recycled cancelled timeouts must come back clean.
    ev = env.timeout(1.0)
    assert not ev.cancelled and ev.callbacks == [] and ev._value is None


@pytest.mark.parametrize("backend", BACKENDS)
def test_timeout_pool_recycles_under_all_backends(backend):
    env = Environment(calendar=backend)

    def proc(env):
        for _ in range(30):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert len(env._timeout_pool) >= 1
    assert env.now == 30.0


def test_pooled_condition_timeouts_not_recycled_while_held():
    # all_of holds its source events in its value dict; they must not
    # be recycled out from under it.
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, value="x")
        t2 = env.timeout(2.0, value="y")
        got = yield env.all_of([t1, t2])
        results.append(sorted(got.values()))

    env.process(proc(env))
    env.run()
    assert results == [["x", "y"]]


# -- S4: advance_to x cancel x compaction, both backends -------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_advance_to_empty_time(backend):
    env = Environment(calendar=backend)
    assert env.advance_to(1000.0) == 1000.0
    assert env.now == 1000.0
    with pytest.raises(ValueError):
        env.advance_to(500.0)  # into the past


@pytest.mark.parametrize("backend", BACKENDS)
def test_advance_to_blocked_by_live_entry(backend):
    env = Environment(calendar=backend)
    env.timeout(10.0)
    with pytest.raises(SimulationError, match="live event scheduled at 10.0"):
        env.advance_to(50.0)
    assert env.now == 0.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_advance_to_skips_cancelled_entries(backend):
    env = Environment(calendar=backend)
    doomed = [env.timeout(float(i + 1)) for i in range(5)]
    keeper = env.timeout(100.0)
    for ev in doomed:
        ev.cancel()
    # peek() discards the cancelled heads; only the live 100.0 blocks.
    assert env.advance_to(50.0) == 50.0
    assert env.stale_timers == 5
    with pytest.raises(SimulationError):
        env.advance_to(200.0)
    assert not keeper.cancelled


@pytest.mark.parametrize("backend", BACKENDS)
def test_cancel_compaction_threshold(backend):
    env = Environment(calendar=backend)
    live = [env.timeout(10000.0 + i) for i in range(200)]
    doomed = [env.timeout(float(i + 1)) for i in range(CALENDAR_COMPACT_THRESHOLD + 1)]
    # Cancel up to the threshold: entries stay parked (dead <= threshold).
    for ev in doomed[:-1]:
        ev.cancel()
    assert env._dead_entries == CALENDAR_COMPACT_THRESHOLD
    assert env.stale_timers == 0
    # One more cancel crosses it, but dead*2 <= pending holds (200 live),
    # so compaction still must not trigger.
    doomed[-1].cancel()
    assert env.stale_timers == 0
    # Cancel live entries until cancelled entries dominate -> compacts
    # (possibly more than once as the calendar shrinks).
    for ev in live[:150]:
        ev.cancel()
    assert env.stale_timers > CALENDAR_COMPACT_THRESHOLD
    assert env._dead_entries < CALENDAR_COMPACT_THRESHOLD
    env.run()
    assert env.now == 10000.0 + 199  # survivors live[150:] all fire


@pytest.mark.parametrize("backend", BACKENDS)
def test_cancel_then_advance_then_run(backend):
    env = Environment(calendar=backend)
    order = []
    env.timeout(5.0, value="early").callbacks.append(lambda e: order.append(e._value))
    doomed = env.timeout(7.0)
    late = env.timeout(500.0, value="late")
    late.callbacks.append(lambda e: order.append(e._value))
    doomed.cancel()
    env.run(until=10.0)
    assert order == ["early"]
    assert env.advance_to(499.0) == 499.0
    env.run()
    assert order == ["early", "late"]
    assert env.now == 500.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_peek_and_step_consistency(backend):
    env = Environment(calendar=backend)
    env.timeout(3.0)
    doomed = env.timeout(1.0)
    doomed.cancel()
    assert env.peek() == 3.0  # cancelled head discarded without advancing
    assert env.now == 0.0
    env.step()
    assert env.now == 3.0
    assert env.peek() == float("inf")
    with pytest.raises(SimulationError, match="empty calendar"):
        env.step()


def test_wheel_massive_schedule_drains_in_order():
    # A sanity-scale wheel run (beyond CALIBRATE_AT so self-calibration
    # engages) must drain fully ordered.
    env = Environment(calendar="wheel")
    rng = random.Random(7)
    n = 20000
    times = sorted(rng.uniform(0.0, 1e6) for _ in range(n))
    order = []
    shuffled = times[:]
    rng.shuffle(shuffled)
    for t in shuffled:
        env.timeout(t, value=t).callbacks.append(lambda e: order.append(e._value))
    env.run()
    assert order == times
    assert env.now == times[-1]
