"""Repository-level quality gates: determinism and documentation."""

import importlib
import pathlib
import pkgutil

import pytest

import repro

SRC_ROOT = pathlib.Path(repro.__file__).parent


def _all_modules():
    names = ["repro"]
    for module in pkgutil.walk_packages([str(SRC_ROOT)], prefix="repro."):
        names.append(module.name)
    return names


class TestDocumentation:
    @pytest.mark.parametrize("module_name", _all_modules())
    def test_every_module_has_a_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), f"{module_name} undocumented"

    def test_public_api_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"


class TestDeterminism:
    def test_microbench_is_deterministic(self):
        """Two identical runs produce byte-identical measurements."""
        from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

        def one_run():
            cfg = MicrobenchConfig(transfer_size=4096, queue_depth=8, iterations=40)
            result = run_dsa_microbench(cfg)
            return (result.throughput, result.mean_latency_ns, result.elapsed_ns)

        assert one_run() == one_run()

    def test_experiment_is_deterministic(self):
        from repro.experiments import run_experiment

        first = run_experiment("fig4", quick=True)
        second = run_experiment("fig4", quick=True)
        for label, series in first.series.items():
            assert second.series[label].points == series.points

    def test_seeded_workload_is_deterministic(self):
        from repro.workloads.cachelib import CacheBenchConfig, run_cachebench

        cfg = CacheBenchConfig(n_cores=2, n_threads=4, ops_per_thread=50)
        a = run_cachebench(cfg)
        b = run_cachebench(CacheBenchConfig(n_cores=2, n_threads=4, ops_per_thread=50))
        assert a.ops_per_second == b.ops_per_second


class TestUnits:
    def test_bandwidth_units_are_bytes_per_ns(self):
        """1 GB/s == 1 byte/ns: the project-wide convention holds."""
        from repro.mem.link import FairShareLink
        from repro.sim import Environment

        env = Environment()
        link = FairShareLink(env, bandwidth=1.0)  # "1 GB/s"
        event = link.transfer(1e9)  # one gigabyte
        env.run()
        assert event.triggered
        assert env.now == pytest.approx(1e9)  # one second in ns
