"""FleetSpec / --fleet parsing / the process-wide install pattern."""

import pytest

from repro.fleet.topology import (
    DEFAULT_FLEET,
    FleetSpec,
    active_fleet,
    default_fleet,
    parse_fleet,
    set_default_fleet,
    set_default_placement,
)


@pytest.fixture(autouse=True)
def _restore_default():
    yield
    set_default_fleet(None)
    set_default_placement("round-robin")


class TestFleetSpec:
    def test_default_is_single_device(self):
        assert DEFAULT_FLEET == FleetSpec(1, 1, "round-robin")
        assert DEFAULT_FLEET.is_default
        assert DEFAULT_FLEET.n_devices == 1

    def test_key_is_stable(self):
        assert FleetSpec(2, 4, "numa-local").key() == "2x4:numa-local"

    def test_devices_group_by_socket(self):
        spec = FleetSpec(2, 2)
        assert [spec.socket_of_device(i) for i in range(4)] == [0, 0, 1, 1]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sockets": 0},
            {"devices_per_socket": 0},
            {"placement": "alphabetical"},
        ],
    )
    def test_validation_rejects_bad_specs(self, kwargs):
        with pytest.raises(ValueError):
            FleetSpec(**kwargs)


class TestParseFleet:
    def test_parses_sockets_x_devices(self):
        assert parse_fleet("2x4") == (2, 4)
        assert parse_fleet("1X1") == (1, 1)

    @pytest.mark.parametrize("text", ["4", "2x", "axb", "0x2", "2x0", "1x2x3"])
    def test_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_fleet(text)


class TestInstallPattern:
    def test_install_and_reset(self):
        set_default_fleet("2x2")
        assert active_fleet() == FleetSpec(2, 2, "round-robin")
        assert not active_fleet().is_default
        set_default_fleet(None)
        assert active_fleet().is_default

    def test_placement_survives_fleet_reinstall(self):
        set_default_placement("numa-local")
        set_default_fleet("2x4")
        assert active_fleet() == FleetSpec(2, 4, "numa-local")
        set_default_fleet(None)
        # Back to 1x1, but the policy choice is sticky.
        assert active_fleet() == FleetSpec(1, 1, "numa-local")

    def test_active_fleet_is_default_fleet(self):
        set_default_fleet("2x1")
        assert active_fleet() == default_fleet()

    def test_bad_placement_install_raises(self):
        with pytest.raises(ValueError, match="unknown placement policy"):
            set_default_placement("hottest")
