"""run_fleet: conservation, scaling sanity, zero-loss failover."""

import pytest

from repro.faults import FaultPlan, injection, uninstall_injector
from repro.fleet import FleetConfig, run_fleet

KB = 1024


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    uninstall_injector()


def quick_config(**overrides):
    base = dict(
        sockets=1,
        devices_per_socket=2,
        transfer_size=16 * KB,
        queue_depth=2,
        iterations=8,
        workers_per_socket=2,
    )
    base.update(overrides)
    return FleetConfig(**base)


#: Disable dsa0 while its WQ still holds queued descriptors: with a
#: 64 KB transfer the PE drains the queue within ~1 us, so the timer
#: must fire early and the workers must overfill the queue.
FAILOVER = dict(
    sockets=2,
    devices_per_socket=2,
    placement="numa-local",
    transfer_size=64 * KB,
    queue_depth=8,
    iterations=16,
    workers_per_socket=3,
    disable_device="dsa0",
    disable_at_ns=500.0,
)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sockets": 0},
            {"devices_per_socket": 0},
            {"transfer_size": 0},
            {"queue_depth": 0},
            {"iterations": 0},
            {"workers_per_socket": 0},
        ],
    )
    def test_validate_rejects_degenerate_configs(self, kwargs):
        with pytest.raises(ValueError):
            run_fleet(quick_config(**kwargs))

    def test_offered_counts_all_workers(self):
        cfg = quick_config(sockets=2, workers_per_socket=3, iterations=5)
        assert cfg.offered == 2 * 3 * 5
        assert cfg.n_devices == 4


class TestConservation:
    def test_clean_run_completes_everything(self):
        result = run_fleet(quick_config())
        assert result.lost == 0
        assert result.completed == result.offered == 16
        assert result.payload_bytes == result.offered * 16 * KB
        assert result.throughput > 0
        assert result.rerouted == 0 and result.to_software == 0

    def test_selections_spread_over_devices(self):
        result = run_fleet(quick_config(placement="round-robin"))
        selected = {
            name: value
            for name, value in result.metrics.items()
            if name.endswith(".selected")
        }
        assert set(selected) == {"fleet.dsa0.selected", "fleet.dsa1.selected"}
        assert sum(selected.values()) == float(result.offered)

    def test_adding_a_device_does_not_hurt_throughput(self):
        one = run_fleet(quick_config(devices_per_socket=1, iterations=12))
        two = run_fleet(quick_config(devices_per_socket=2, iterations=12))
        assert two.throughput >= 0.95 * one.throughput

    def test_runs_are_deterministic(self):
        first = run_fleet(FleetConfig(**FAILOVER))
        second = run_fleet(FleetConfig(**FAILOVER))
        assert first.elapsed_ns == second.elapsed_ns
        assert first.rerouted == second.rerouted
        assert first.metrics == second.metrics


class TestFailover:
    def test_device_loss_loses_nothing(self):
        result = run_fleet(FleetConfig(**FAILOVER))
        assert result.lost == 0
        assert result.rerouted > 0
        assert result.metrics["fleet.dsa0.failover.events"] == 1.0
        assert result.metrics["fleet.dsa0.failover.rerouted"] == float(
            result.rerouted
        )
        # NUMA-local failover lands on the socket-0 sibling first.
        assert result.metrics["fleet.dsa1.failover.absorbed"] > 0
        assert result.metrics["fleet.devices_live.level"] == 3.0

    def test_single_device_loss_degrades_to_software(self):
        result = run_fleet(
            quick_config(
                devices_per_socket=1,
                transfer_size=64 * KB,
                queue_depth=8,
                workers_per_socket=3,
                iterations=8,
                disable_device="dsa0",
                disable_at_ns=500.0,
            )
        )
        assert result.lost == 0
        assert result.to_software > 0
        assert result.bytes_software > 0
        assert result.metrics["fleet.dsa0.failover.to_software"] == float(
            result.to_software
        )

    def test_reset_window_fault_plan_loses_nothing(self):
        # A repro.faults transient reset window aborts every dispatch in
        # [500, 6500) fleet-wide — wide enough to catch the second wave
        # of 64 KB dispatches (~5.5 us in) on every device at once.
        # Recovery must back off past the window and still conserve.
        plan = FaultPlan(device_reset_at=(500.0,), device_reset_window_ns=6_000.0)
        with injection(plan):
            result = run_fleet(quick_config(transfer_size=64 * KB))
        assert result.lost == 0
        assert result.completed == result.offered
        assert result.metrics["recovery.faults"] > 0
        assert result.rerouted + result.to_software > 0
