"""Placement policies: determinism, locality preference, load ranking."""

from types import SimpleNamespace

import pytest

from repro.fleet.policy import (
    POLICIES,
    LeastLoadedPolicy,
    NumaLocalPolicy,
    RoundRobinPolicy,
    make_policy,
    policy_names,
)


def portal(name, socket=0, inflight=0.0, wq_id=0):
    """A portal stand-in with the attributes policies actually read."""
    device = SimpleNamespace(
        name=name,
        socket=socket,
        enabled=True,
        port=SimpleNamespace(bytes_inflight=inflight),
    )
    return SimpleNamespace(device=device, wq_id=wq_id)


class TestRoundRobin:
    def test_rotates_over_candidates(self):
        candidates = [portal("dsa0"), portal("dsa1"), portal("dsa2")]
        policy = RoundRobinPolicy()
        picks = [policy.choose(candidates).device.name for _ in range(6)]
        assert picks == ["dsa0", "dsa1", "dsa2", "dsa0", "dsa1", "dsa2"]

    def test_survives_candidate_list_shrinking(self):
        policy = RoundRobinPolicy()
        full = [portal("dsa0"), portal("dsa1"), portal("dsa2")]
        for _ in range(5):
            policy.choose(full)
        # A device died: the cursor must still index validly.
        survivors = full[:2]
        assert policy.choose(survivors).device.name in {"dsa0", "dsa1"}


class TestNumaLocal:
    def test_prefers_local_and_rotates_within_socket(self):
        candidates = [
            portal("dsa0", socket=0),
            portal("dsa1", socket=0),
            portal("dsa2", socket=1),
            portal("dsa3", socket=1),
        ]
        policy = NumaLocalPolicy()
        picks = [policy.choose(candidates, socket=1).device.name for _ in range(4)]
        assert picks == ["dsa2", "dsa3", "dsa2", "dsa3"]

    def test_falls_back_to_full_set_when_socket_empty(self):
        candidates = [portal("dsa0", socket=0), portal("dsa1", socket=0)]
        policy = NumaLocalPolicy()
        picks = {policy.choose(candidates, socket=1).device.name for _ in range(4)}
        assert picks == {"dsa0", "dsa1"}

    def test_no_socket_degrades_to_round_robin(self):
        candidates = [portal("dsa0", socket=0), portal("dsa1", socket=1)]
        policy = NumaLocalPolicy()
        picks = [policy.choose(candidates).device.name for _ in range(4)]
        assert picks == ["dsa0", "dsa1", "dsa0", "dsa1"]

    def test_per_socket_cursors_are_independent(self):
        candidates = [
            portal("dsa0", socket=0),
            portal("dsa1", socket=0),
            portal("dsa2", socket=1),
            portal("dsa3", socket=1),
        ]
        policy = NumaLocalPolicy()
        assert policy.choose(candidates, socket=0).device.name == "dsa0"
        # Socket 1's rotation starts fresh regardless of socket 0's.
        assert policy.choose(candidates, socket=1).device.name == "dsa2"
        assert policy.choose(candidates, socket=0).device.name == "dsa1"
        assert policy.choose(candidates, socket=1).device.name == "dsa3"


class TestLeastLoaded:
    def test_picks_minimum_inflight(self):
        candidates = [
            portal("dsa0", inflight=4096.0),
            portal("dsa1", inflight=512.0),
            portal("dsa2", inflight=65536.0),
        ]
        assert LeastLoadedPolicy().choose(candidates).device.name == "dsa1"

    def test_ties_break_on_device_name(self):
        candidates = [portal("dsa1", inflight=0.0), portal("dsa0", inflight=0.0)]
        assert LeastLoadedPolicy().choose(candidates).device.name == "dsa0"


class TestRegistry:
    def test_registry_names_and_factory_agree(self):
        assert set(policy_names()) == set(POLICIES) == {
            "round-robin",
            "numa-local",
            "least-loaded",
        }
        for name in policy_names():
            assert make_policy(name).name == name

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown placement policy"):
            make_policy("warmest-device")
