"""Multi-socket device placement: spr_platform and fleet_platform."""

import pytest

from repro.platform import fleet_platform, spr_platform


class TestSprPlacement:
    def test_devices_distribute_round_robin_across_sockets(self):
        # The regression this guards: every instance of a multi-device
        # platform used to land on socket 0, so "remote device" was
        # unreachable by construction.
        platform = spr_platform(n_devices=4, sockets=2)
        sockets = {
            name: device.socket for name, device in platform.driver.devices.items()
        }
        assert sockets == {"dsa0": 0, "dsa1": 1, "dsa2": 0, "dsa3": 1}

    def test_socket_of_override_pins_placement(self):
        platform = spr_platform(n_devices=2, sockets=2, socket_of=lambda _i: 0)
        assert all(
            device.socket == 0 for device in platform.driver.devices.values()
        )

    def test_socket_of_out_of_range_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            spr_platform(n_devices=1, sockets=2, socket_of=lambda _i: 2)

    def test_default_platform_keeps_ats_model_off(self):
        assert spr_platform().memsys.model_ats_contention is False


class TestFleetPlatform:
    def test_devices_group_by_socket(self):
        platform = fleet_platform(sockets=2, devices_per_socket=2)
        sockets = {
            name: device.socket for name, device in platform.driver.devices.items()
        }
        assert sockets == {"dsa0": 0, "dsa1": 0, "dsa2": 1, "dsa3": 1}

    def test_turns_on_shared_iommu_model(self):
        assert fleet_platform().memsys.model_ats_contention is True

    @pytest.mark.parametrize("kwargs", [{"sockets": 0}, {"devices_per_socket": 0}])
    def test_rejects_degenerate_shapes(self, kwargs):
        with pytest.raises(ValueError):
            fleet_platform(**kwargs)
