"""FleetScheduler: live-set tracking, failover masking, accounting."""

import pytest

from repro.fleet.policy import make_policy
from repro.fleet.scheduler import FleetScheduler
from repro.mem import AddressSpace
from repro.platform import fleet_platform


def build_fleet(sockets=2, devices=2, placement="round-robin"):
    platform = fleet_platform(sockets=sockets, devices_per_socket=devices)
    space = AddressSpace()
    portals = [
        platform.open_portal(name, 0, space)
        for name in sorted(platform.driver.devices)
    ]
    scheduler = FleetScheduler(
        platform.driver, portals, policy=make_policy(placement)
    )
    return platform, scheduler


class TestConstruction:
    def test_rejects_empty_portal_list(self):
        platform = fleet_platform(sockets=1, devices_per_socket=1)
        with pytest.raises(ValueError, match="at least one portal"):
            FleetScheduler(platform.driver, [])

    def test_publishes_live_gauge_at_start(self):
        platform, _scheduler = build_fleet()
        assert platform.metrics_snapshot()["fleet.devices_live.level"] == 4.0


class TestSelection:
    def test_round_robin_covers_every_device(self):
        platform, scheduler = build_fleet()
        picks = [scheduler.select().device.name for _ in range(8)]
        assert picks == ["dsa0", "dsa1", "dsa2", "dsa3"] * 2
        snapshot = platform.metrics_snapshot()
        for name in ("dsa0", "dsa1", "dsa2", "dsa3"):
            assert snapshot[f"fleet.{name}.selected"] == 2.0

    def test_numa_local_keeps_submitter_on_its_socket(self):
        _platform, scheduler = build_fleet(placement="numa-local")
        sockets = {scheduler.select(socket=1).device.socket for _ in range(6)}
        assert sockets == {1}

    def test_exclude_masks_a_live_device(self):
        _platform, scheduler = build_fleet(sockets=1, devices=2)
        picks = {
            scheduler.select(exclude=("dsa0",)).device.name for _ in range(4)
        }
        assert picks == {"dsa1"}


class TestDeviceLoss:
    def test_disable_removes_device_from_candidates(self):
        platform, scheduler = build_fleet()
        platform.driver.disable("dsa0")
        assert {p.device.name for p in scheduler.live_portals()} == {
            "dsa1",
            "dsa2",
            "dsa3",
        }
        picks = {scheduler.select().device.name for _ in range(9)}
        assert "dsa0" not in picks
        snapshot = platform.metrics_snapshot()
        assert snapshot["fleet.devices_live.level"] == 3.0
        assert snapshot["fleet.dsa0.failover.events"] == 1.0

    def test_all_disabled_raises(self):
        platform, scheduler = build_fleet(sockets=1, devices=2)
        platform.driver.disable("dsa0")
        platform.driver.disable("dsa1")
        with pytest.raises(RuntimeError, match="no live device portal"):
            scheduler.select()

    def test_reenabled_device_rejoins_rotation(self):
        platform, scheduler = build_fleet(sockets=1, devices=2)
        platform.driver.disable("dsa0")
        assert {scheduler.select().device.name for _ in range(4)} == {"dsa1"}
        platform.driver.enable("dsa0")
        assert platform.metrics_snapshot()["fleet.devices_live.level"] == 2.0
        picks = {scheduler.select().device.name for _ in range(4)}
        assert picks == {"dsa0", "dsa1"}

    def test_numa_local_fails_over_across_sockets(self):
        platform, scheduler = build_fleet(placement="numa-local")
        platform.driver.disable("dsa2")
        platform.driver.disable("dsa3")
        # Socket 1 has no live device left: placement crosses the UPI.
        sockets = {scheduler.select(socket=1).device.socket for _ in range(4)}
        assert sockets == {0}


class TestFailoverAccounting:
    def test_reroute_books_both_sides(self):
        platform, scheduler = build_fleet()
        scheduler.record_failover("dsa0", "dsa1")
        scheduler.record_failover("dsa0", "dsa1")
        snapshot = platform.metrics_snapshot()
        assert snapshot["fleet.dsa0.failover.rerouted"] == 2.0
        assert snapshot["fleet.dsa1.failover.absorbed"] == 2.0

    def test_software_degradation_books_to_software(self):
        platform, scheduler = build_fleet()
        scheduler.record_failover("dsa0", None)
        snapshot = platform.metrics_snapshot()
        assert snapshot["fleet.dsa0.failover.to_software"] == 1.0
        assert "fleet.dsa0.failover.rerouted" not in snapshot
