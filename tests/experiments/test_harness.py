"""Tests for the experiment registry, result container, and quick runs.

Every registered experiment gets a quick-mode smoke test: it must run,
produce at least one table, and keep all its paper anchors.
"""

import sys
import types

import pytest

from repro.analysis.tables import Table
from repro.experiments import all_experiments, get_experiment, resolve_ids, run_experiment
from repro.experiments import registry as registry_module
from repro.experiments.base import AnchorCheck, ExperimentResult
from repro.obs import MetricsRegistry, install_metrics, uninstall_metrics


class TestRegistry:
    def test_lists_all_paper_items(self):
        experiments = all_experiments()
        assert "table1" in experiments and "table2" in experiments
        for figure in (2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 19, 21):
            assert f"fig{figure}" in experiments
        assert "faults" in experiments
        assert "cbdma" in experiments
        assert "ablations" in experiments
        assert "guidelines" in experiments
        for traffic in ("traffic-crossover", "traffic-qos", "traffic-retry"):
            assert traffic in experiments
        assert "fleet-scaling" in experiments
        assert len(experiments) == 28

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_modules_expose_run(self):
        for exp_id in all_experiments():
            module = get_experiment(exp_id)
            assert callable(module.run)


class TestResolveIds:
    def test_all_expands_to_every_experiment(self):
        assert resolve_ids("all") == all_experiments()

    def test_single_id(self):
        assert resolve_ids("fig5") == ["fig5"]

    def test_comma_separated_list_keeps_order(self):
        assert resolve_ids("fig2,fig5,table1") == ["fig2", "fig5", "table1"]

    def test_whitespace_and_duplicates_are_tolerated(self):
        assert resolve_ids(" fig2 , fig5 ,fig2 ") == ["fig2", "fig5"]

    def test_unknown_id_fails_upfront_with_registry_message(self):
        with pytest.raises(KeyError, match="unknown experiment 'fig99'"):
            resolve_ids("fig2,fig99,fig5")

    def test_empty_spec_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            resolve_ids(" , ,")


class TestMetricsSnapshotConsistency:
    """A failed run must never pollute the next result's snapshot."""

    @pytest.fixture(autouse=True)
    def _registry(self):
        registry = MetricsRegistry()
        install_metrics(registry)
        yield registry
        uninstall_metrics()

    def _register(self, monkeypatch, name, run):
        module = types.ModuleType(f"repro_test_{name}")
        module.run = run
        monkeypatch.setitem(sys.modules, f"repro_test_{name}", module)
        monkeypatch.setitem(registry_module._EXPERIMENTS, name, f"repro_test_{name}")

    def test_failure_clears_partial_metrics(self, monkeypatch, _registry):
        def boom(quick=False):
            _registry.counter("boom.partial").add(41)
            raise RuntimeError("mid-run failure")

        self._register(monkeypatch, "boom", boom)
        with pytest.raises(RuntimeError, match="mid-run failure"):
            run_experiment("boom", quick=True)
        assert len(_registry) == 0

    def test_next_run_snapshot_excludes_failed_runs_metrics(self, monkeypatch, _registry):
        def boom(quick=False):
            _registry.counter("boom.partial").add(41)
            raise RuntimeError("mid-run failure")

        def good(quick=False):
            _registry.counter("good.done").add(1)
            return ExperimentResult("good", "t", "d")

        self._register(monkeypatch, "boom", boom)
        self._register(monkeypatch, "good", good)
        with pytest.raises(RuntimeError):
            run_experiment("boom", quick=True)
        result = run_experiment("good", quick=True)
        assert result.metrics == {"good.done": 1.0}
        assert "boom.partial" not in result.metrics

    def test_snapshot_scoped_to_one_experiment_even_without_cli_clear(
        self, monkeypatch, _registry
    ):
        def first(quick=False):
            _registry.counter("first.count").add(1)
            return ExperimentResult("first", "t", "d")

        def second(quick=False):
            _registry.counter("second.count").add(1)
            return ExperimentResult("second", "t", "d")

        self._register(monkeypatch, "first", first)
        self._register(monkeypatch, "second", second)
        run_experiment("first", quick=True)
        result = run_experiment("second", quick=True)
        assert result.metrics == {"second.count": 1.0}


class TestResultContainer:
    def test_anchor_rendering(self):
        check = AnchorCheck("x", "1", "2", holds=False)
        assert "MISS" in check.render()
        assert "OK" in AnchorCheck("x", "1", "1", holds=True).render()

    def test_result_render_includes_everything(self):
        result = ExperimentResult("id", "Title", "Desc")
        table = Table("T", ["c"])
        table.add_row("v")
        result.tables.append(table)
        result.check("anchor", "paper", "measured", True)
        rendered = result.render()
        assert "Title" in rendered and "T" in rendered and "anchor" in rendered
        assert result.anchors_hold

    def test_anchors_hold_false_on_miss(self):
        result = ExperimentResult("id", "t", "d")
        result.check("bad", "x", "y", False)
        assert not result.anchors_hold


@pytest.mark.parametrize("exp_id", all_experiments())
def test_quick_run_keeps_anchors(exp_id):
    result = run_experiment(exp_id, quick=True)
    assert result.exp_id == exp_id
    assert result.tables, f"{exp_id} produced no tables"
    missed = [anchor.name for anchor in result.anchors if not anchor.holds]
    assert not missed, f"{exp_id} missed anchors: {missed}"
