"""Tests for the experiment registry, result container, and quick runs.

Every registered experiment gets a quick-mode smoke test: it must run,
produce at least one table, and keep all its paper anchors.
"""

import pytest

from repro.analysis.tables import Table
from repro.experiments import all_experiments, get_experiment, run_experiment
from repro.experiments.base import AnchorCheck, ExperimentResult


class TestRegistry:
    def test_lists_all_paper_items(self):
        experiments = all_experiments()
        assert "table1" in experiments and "table2" in experiments
        for figure in (2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 19, 21):
            assert f"fig{figure}" in experiments
        assert "cbdma" in experiments
        assert "ablations" in experiments
        assert "guidelines" in experiments
        assert len(experiments) == 23

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_modules_expose_run(self):
        for exp_id in all_experiments():
            module = get_experiment(exp_id)
            assert callable(module.run)


class TestResultContainer:
    def test_anchor_rendering(self):
        check = AnchorCheck("x", "1", "2", holds=False)
        assert "MISS" in check.render()
        assert "OK" in AnchorCheck("x", "1", "1", holds=True).render()

    def test_result_render_includes_everything(self):
        result = ExperimentResult("id", "Title", "Desc")
        table = Table("T", ["c"])
        table.add_row("v")
        result.tables.append(table)
        result.check("anchor", "paper", "measured", True)
        rendered = result.render()
        assert "Title" in rendered and "T" in rendered and "anchor" in rendered
        assert result.anchors_hold

    def test_anchors_hold_false_on_miss(self):
        result = ExperimentResult("id", "t", "d")
        result.check("bad", "x", "y", False)
        assert not result.anchors_hold


@pytest.mark.parametrize("exp_id", all_experiments())
def test_quick_run_keeps_anchors(exp_id):
    result = run_experiment(exp_id, quick=True)
    assert result.exp_id == exp_id
    assert result.tables, f"{exp_id} produced no tables"
    missed = [anchor.name for anchor in result.anchors if not anchor.holds]
    assert not missed, f"{exp_id} missed anchors: {missed}"
