"""SloAccountant: window roll, starvation floor, cohorts, finalize."""

import pytest

from repro.traffic import Slo, SloAccountant, TenantSpec
from repro.traffic.slo import STARVATION_MIN_OFFERED


def spec(name="t000", **overrides):
    base = dict(name=name, rate=1e-4)
    base.update(overrides)
    return TenantSpec(**base)


def make(window_ns=100.0, **kwargs):
    return SloAccountant(window_ns=window_ns, **kwargs)


def test_register_rejects_duplicates():
    acct = make()
    acct.register(spec())
    with pytest.raises(ValueError, match="already registered"):
        acct.register(spec())
    assert len(acct) == 1 and "t000" in acct


def test_rejects_nonpositive_window():
    with pytest.raises(ValueError, match="window_ns"):
        SloAccountant(window_ns=0.0)


def test_totals_conserve_and_count_retries():
    acct = make()
    acct.register(spec())
    acct.offered("t000", 10.0)
    acct.offered("t000", 20.0)
    acct.completed("t000", 50.0, latency_ns=40.0, nbytes=4096, retries=2)
    acct.dropped("t000", 60.0, retries=8)
    totals = acct.totals()
    assert totals["offered"] == 2
    assert totals["completed"] == 1
    assert totals["dropped"] == 1
    assert totals["retries"] == 10
    assert totals["bytes_completed"] == 4096


def test_idle_windows_are_skipped_not_evaluated():
    # A long idle stretch between two active windows must add exactly
    # one evaluated window (the active one), not one per idle window.
    acct = make(window_ns=100.0)
    acct.register(spec(slo=Slo(p99_ns=1e9)))
    acct.offered("t000", 10.0)
    acct.completed("t000", 20.0, latency_ns=10.0, nbytes=1)
    # Jump 1e6 windows forward; the roll is O(1) and evaluates only the
    # single active window left behind.
    acct.offered("t000", 1e8 + 10.0)
    account = acct.account("t000")
    assert account.windows == 1
    assert account.window_start == pytest.approx(1e8)


def test_starvation_needs_min_offered():
    # Below the floor: an offered-but-not-completed window is pipelining,
    # not starvation.
    acct = make(window_ns=100.0)
    acct.register(spec(slo=Slo(p99_ns=1e9)))
    for i in range(STARVATION_MIN_OFFERED - 1):
        acct.offered("t000", 10.0 + i)
    acct.offered("t000", 150.0)  # rolls the window
    assert acct.account("t000").violation_windows == 0

    # At the floor: the window counts as starved.
    acct2 = make(window_ns=100.0)
    acct2.register(spec(slo=Slo(p99_ns=1e9)))
    for i in range(STARVATION_MIN_OFFERED):
        acct2.offered("t000", 10.0 + i)
    acct2.offered("t000", 150.0)
    assert acct2.account("t000").violation_windows == 1


def test_percentile_breach_violates_window():
    acct = make(window_ns=100.0)
    acct.register(spec(slo=Slo(p99_ns=50.0)))
    for i in range(10):
        acct.offered("t000", 10.0 + i)
        acct.completed("t000", 10.0 + i, latency_ns=200.0, nbytes=1)
    acct.completed("t000", 150.0, latency_ns=1.0, nbytes=1)  # rolls
    assert acct.account("t000").violation_windows == 1


def test_no_slo_never_violates():
    acct = make(window_ns=100.0)
    acct.register(spec(slo=None))
    for i in range(20):
        acct.offered("t000", 10.0 + i)
    acct.offered("t000", 250.0)
    account = acct.account("t000")
    assert account.windows == 1 and account.violation_windows == 0


def test_cohort_merge_is_exact():
    acct = make()
    acct.register(spec("a", cohort="hi"))
    acct.register(spec("b", cohort="hi"))
    acct.register(spec("c", cohort="lo"))
    for latency in (10.0, 20.0, 30.0):
        acct.completed("a", 1.0, latency_ns=latency, nbytes=1)
    acct.completed("b", 1.0, latency_ns=40.0, nbytes=1)
    acct.completed("c", 1.0, latency_ns=99.0, nbytes=1)
    assert acct.cohorts() == ["hi", "lo"]
    assert len(acct.cohort_hist("hi")) == 4
    stats = acct.cohort_stats("hi")
    assert stats["completed"] == 4
    # The lo cohort's sample must not leak into hi's percentile.
    assert acct.cohort_percentile("hi", 100.0) < 99.0 * 1.01


def test_shadow_mode_keeps_raw_samples():
    acct = make(shadow_exact=True)
    acct.register(spec())
    acct.completed("t000", 1.0, latency_ns=5.0, nbytes=1)
    assert acct.account("t000").shadow_samples == [5.0]
    # Off by default: no per-sample accumulation.
    plain = make()
    plain.register(spec())
    plain.completed("t000", 1.0, latency_ns=5.0, nbytes=1)
    assert plain.account("t000").shadow_samples is None


def test_finalize_twice_raises():
    from repro.obs import MetricsRegistry

    acct = make()
    acct.register(spec())
    acct.offered("t000", 10.0)
    acct.completed("t000", 20.0, latency_ns=10.0, nbytes=64)
    registry = MetricsRegistry()
    totals = acct.finalize(1000.0, registry)
    assert totals["offered"] == 1
    snap = registry.snapshot()
    assert snap["traffic.offered"] == 1
    assert snap["traffic.completed"] == 1
    assert snap["traffic.bytes_completed"] == 64
    assert snap["traffic.cohort.default.offered"] == 1
    with pytest.raises(RuntimeError, match="finalize called twice"):
        acct.finalize(2000.0, registry)


def test_empty_accountant_is_falsy_but_usable():
    # Regression: LoadGenerator must not test accountants for truth —
    # a freshly built (empty) one has len() == 0.
    acct = make(shadow_exact=True)
    assert not acct
    assert acct.shadow_exact
