"""Scale-tier table, install-globals, and cache variant salting."""

import pytest

from repro.exec.cache import variant_string
from repro.traffic import (
    TIERS,
    TRAFFIC_MODES,
    active_tier,
    default_tier,
    default_traffic,
    set_default_tier,
    set_default_traffic,
    tier_names,
)


@pytest.fixture(autouse=True)
def _restore_installs():
    yield
    set_default_tier("small")
    set_default_traffic("default")


def test_tier_table_shape():
    assert tier_names() == ("small", "medium", "large")
    for tier in TIERS.values():
        tier.validate()
    # Strictly increasing scale and budget down the table.
    small, medium, large = TIERS["small"], TIERS["medium"], TIERS["large"]
    assert small.requests < medium.requests < large.requests
    assert small.tenants < medium.tenants < large.tenants
    assert small.expected_wall_s < medium.expected_wall_s < large.expected_wall_s
    # The documented contract: ~10K CI, ~2M nightly.
    assert small.requests == 10_000 and large.requests == 2_000_000


def test_install_globals_roundtrip():
    assert default_tier() == "small"
    set_default_tier("large")
    assert default_tier() == "large"
    assert active_tier() is TIERS["large"]
    set_default_traffic("bursty")
    assert default_traffic() == "bursty"


def test_install_rejects_unknown():
    with pytest.raises(ValueError, match="scale tier"):
        set_default_tier("huge")
    with pytest.raises(ValueError, match="traffic mode"):
        set_default_traffic("fractal")
    # A rejected install leaves the previous value in place.
    assert default_tier() == "small"
    assert default_traffic() == "default"


def test_traffic_modes_cover_arrival_kinds():
    assert TRAFFIC_MODES == ("default", "poisson", "bursty", "diurnal")


# -- cache variant salting --------------------------------------------------


def test_default_tier_and_traffic_keep_historical_keys():
    # Defaults are dropped from the salt so pre-traffic cache entries
    # stay addressable.
    assert variant_string(tier="small", traffic="default") == ""
    assert variant_string(tier="small", traffic="default", hist="auto") == ""


def test_nondefault_tier_and_traffic_salt_the_key():
    assert variant_string(tier="large", traffic="default") == "tier=large"
    assert variant_string(tier="small", traffic="bursty") == "traffic=bursty"
    assert (
        variant_string(traffic="diurnal", tier="medium")
        == "tier=medium,traffic=diurnal"
    )
