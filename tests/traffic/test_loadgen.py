"""LoadGenerator / CpuServicePool / drive_profile end-to-end invariants."""

import pytest

from repro.cpu.swlib import SoftwareKernels
from repro.dsa.config import (
    DeviceConfig,
    EngineConfig,
    GroupConfig,
    WqConfig,
    WqMode,
)
from repro.platform import spr_platform
from repro.sim.engine import Environment
from repro.traffic import (
    CpuServicePool,
    LoadGenerator,
    SizeDist,
    SloAccountant,
    TenantSpec,
    TrafficProfile,
    drive_profile,
    dsa_capacity,
    make_tenants,
)
from repro.dsa.opcodes import Opcode

KB = 1024


def swq_config(wq_size=64, n_engines=4):
    return DeviceConfig.single(wq_size=wq_size, n_engines=n_engines, mode=WqMode.SHARED)


def small_profile(n=4, rate_factor=0.5, **tenant_common):
    return TrafficProfile(
        name="test",
        tenants=make_tenants(
            "t", n, rate_factor * dsa_capacity(4 * KB), **tenant_common
        ),
    )


# -- CpuServicePool ---------------------------------------------------------


def test_cpu_pool_sheds_beyond_queue_limit():
    env = Environment()
    pool = CpuServicePool(env, SoftwareKernels(), cores=1, queue_limit=2)
    events = [pool.try_submit(Opcode.MEMMOVE, 4 * KB) for _ in range(5)]
    admitted = [e for e in events if e is not None]
    assert len(admitted) == 2 and pool.shed == 3
    assert env.metrics.snapshot()["cpu_pool.shed"] == 3
    env.run()
    assert pool.served == 2
    assert all(e.triggered for e in admitted)


def test_cpu_pool_serves_fifo():
    env = Environment()
    pool = CpuServicePool(env, SoftwareKernels(), cores=1, queue_limit=10)
    first = pool.try_submit(Opcode.MEMMOVE, 64 * KB)
    second = pool.try_submit(Opcode.MEMMOVE, 1 * KB)
    env.run()
    # One worker: the large first request completes before the tiny
    # second one — admission order, not size order.
    assert first.value < second.value


def test_cpu_pool_validates_shape():
    env = Environment()
    with pytest.raises(ValueError, match="core"):
        CpuServicePool(env, SoftwareKernels(), cores=0)
    with pytest.raises(ValueError, match="queue_limit"):
        CpuServicePool(env, SoftwareKernels(), queue_limit=0)


# -- LoadGenerator construction --------------------------------------------


def test_rejects_dedicated_wq():
    platform = spr_platform(device_config=DeviceConfig.single(wq_size=32))
    with pytest.raises(ValueError, match="shared WQ"):
        LoadGenerator(platform, small_profile(), 100)


def test_rejects_qos_priority_mismatch():
    config = DeviceConfig(
        wqs=(WqConfig(wq_id=0, size=64, mode=WqMode.SHARED, priority=15),),
        engines=tuple(EngineConfig(i) for i in range(4)),
        groups=(GroupConfig(0, wq_ids=(0,), engine_ids=(0, 1, 2, 3)),),
    )
    platform = spr_platform(device_config=config)
    profile = small_profile(qos_priority=1)  # WQ is configured at 15
    with pytest.raises(ValueError, match="qos_priority"):
        LoadGenerator(platform, profile, 100)


def test_explicit_accountant_is_kept():
    # Regression: an empty SloAccountant is falsy (len == 0); the
    # constructor must not replace it with a default via `or`.
    platform = spr_platform(device_config=swq_config())
    acct = SloAccountant(window_ns=123.0, shadow_exact=True)
    generator = LoadGenerator(platform, small_profile(), 100, accountant=acct)
    assert generator.accountant is acct


def test_request_counts_largest_remainder():
    platform = spr_platform(device_config=swq_config())
    base = 1e-4
    tenants = tuple(
        TenantSpec(name=f"t{i:03d}", rate=base * w) for i, w in enumerate((1, 1, 1, 4))
    )
    profile = TrafficProfile(name="p", tenants=tenants)
    generator = LoadGenerator(platform, profile, 100)
    counts = generator.request_counts()
    assert sum(counts) == 100
    # 100 * 4/7 = 57.14 -> the heavy tenant gets 57, the rest 14-15.
    assert counts[3] == 57 and sorted(counts[:3]) == [14, 14, 15]


# -- end-to-end conservation and determinism -------------------------------


def test_drive_profile_conserves_and_totals_match():
    generator, totals = drive_profile(small_profile(), 1000)
    assert totals["offered"] == 1000
    assert totals["offered"] == totals["completed"] + totals["dropped"]
    acct_totals = generator.accountant.totals()
    for key in ("offered", "completed", "dropped"):
        assert acct_totals[key] == totals[key]


def test_drive_profile_is_deterministic():
    profile = small_profile(arrival="bursty", cv2=4.0)
    gen_a, totals_a = drive_profile(profile, 800)
    gen_b, totals_b = drive_profile(profile, 800)
    assert totals_a == totals_b
    for t in profile.tenants:
        a, b = gen_a.accountant.account(t.name), gen_b.accountant.account(t.name)
        assert a.completed == b.completed
        if a.completed:
            assert a.percentile(99.0) == b.percentile(99.0)


def test_finalize_is_idempotent():
    generator, totals = drive_profile(small_profile(), 500)
    assert generator.finalize() is totals


def test_overload_sheds_with_bounded_retries():
    profile = TrafficProfile(
        name="storm",
        tenants=make_tenants(
            "t",
            8,
            1.5 * dsa_capacity(8 * KB),
            arrival="bursty",
            cv2=9.0,
            sizes=SizeDist(kind="fixed", size=8 * KB),
        ),
    )
    generator, totals = drive_profile(
        profile, 3000, device_config=swq_config(wq_size=16)
    )
    assert totals["dropped"] > 0
    assert totals["retries"] > 0
    snap = generator.platform.metrics_snapshot()
    # Every retry is attributed: per-source counters sum exactly to the
    # WQ aggregate.
    per_source = sum(
        v
        for k, v in snap.items()
        if k.startswith("dsa0.wq0.source.") and k.endswith(".enqcmd_retries")
    )
    assert per_source == snap["dsa0.wq0.enqcmd_retries"] > 0


def test_cpu_target_uses_pool_and_conserves():
    profile = TrafficProfile(
        name="cpu",
        tenants=make_tenants(
            "t",
            4,
            0.5e-3,
            target="cpu",
            sizes=SizeDist(kind="fixed", size=4 * KB),
        ),
        cpu_cores=2,
        cpu_queue_limit=8,
    )
    generator, totals = drive_profile(profile, 1000)
    assert generator.cpu_pool is not None
    assert totals["offered"] == 1000
    assert totals["completed"] == generator.cpu_pool.served
    assert totals["dropped"] == generator.cpu_pool.shed


def test_start_twice_raises():
    platform = spr_platform(device_config=swq_config())
    generator = LoadGenerator(platform, small_profile(), 100)
    generator.start()
    with pytest.raises(RuntimeError, match="start"):
        generator.start()
