"""Fleet placement in the traffic layer: spread, failover, QoS pinning."""

import pytest

from repro.dsa.config import DeviceConfig, WqConfig, EngineConfig, GroupConfig, WqMode
from repro.fleet import FleetSpec
from repro.platform import fleet_platform, spr_platform
from repro.traffic.loadgen import LoadGenerator, drive_profile
from repro.traffic.profile import SizeDist, TrafficProfile, dsa_capacity, make_tenants

KB = 1024
SIZE = 8 * KB
ENGINES = 4


def shared_config(wq_size=128):
    return DeviceConfig.single(wq_size=wq_size, n_engines=ENGINES, mode=WqMode.SHARED)


def profile_for(n_tenants, rho, max_retries=4):
    rate = rho * dsa_capacity(SIZE, engines=ENGINES)
    return TrafficProfile(
        name=f"fleet-{n_tenants}",
        tenants=make_tenants(
            "t",
            n_tenants,
            rate,
            sizes=SizeDist(kind="fixed", size=SIZE),
            max_retries=max_retries,
        ),
    )


def run_with_disable(platform, profile, requests, fleet, disable_at, device="dsa0"):
    generator = LoadGenerator(platform, profile, requests, fleet=fleet)
    generator.start()

    def killer(env):
        yield env.timeout(disable_at)
        platform.driver.disable(device)

    platform.env.process(killer(platform.env), name="test.disable")
    platform.env.run()
    return generator, generator.finalize()


class TestFleetPlacement:
    def test_requests_spread_over_every_device(self):
        generator, totals = drive_profile(
            profile_for(4, rho=0.5),
            200,
            fleet=FleetSpec(2, 2, "round-robin"),
        )
        assert totals["offered"] == totals["completed"] + totals["dropped"]
        snapshot = generator.platform.metrics_snapshot()
        for name in ("dsa0", "dsa1", "dsa2", "dsa3"):
            assert snapshot[f"fleet.{name}.selected"] > 0

    def test_numa_local_avoids_remote_translations(self):
        generator, _totals = drive_profile(
            profile_for(4, rho=0.5),
            200,
            fleet=FleetSpec(2, 2, "numa-local"),
        )
        snapshot = generator.platform.metrics_snapshot()
        remote = sum(
            value
            for name, value in snapshot.items()
            if ".remote_translations" in name
        )
        # Tenant buffers live on the tenant's socket and numa-local
        # placement keeps the device there too: no UPI translations.
        assert remote == 0

    def test_fleet_and_n_devices_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            drive_profile(
                profile_for(2, rho=0.2),
                50,
                n_devices=2,
                fleet=FleetSpec(2, 1),
            )


class TestFleetFailover:
    def test_device_loss_reroutes_and_conserves(self):
        fleet = FleetSpec(2, 2, "numa-local")
        platform = fleet_platform(
            sockets=2, devices_per_socket=2, device_config=shared_config()
        )
        # Overcommit the fleet so dsa0's WQ is backlogged when it dies.
        profile = profile_for(4, rho=8.0)
        requests = 400
        horizon = requests / sum(t.rate for t in profile.tenants)
        generator, totals = run_with_disable(
            platform, profile, requests, fleet, disable_at=horizon / 4
        )
        assert totals["offered"] == totals["completed"] + totals["dropped"]
        snapshot = generator.platform.metrics_snapshot()
        assert snapshot.get("traffic.fleet.reroutes", 0.0) > 0
        assert snapshot["fleet.dsa0.failover.rerouted"] > 0
        # Post-disable placements never touch the dead device again.
        assert snapshot["fleet.devices_live.level"] == 3.0

    def test_failed_requests_are_dropped_not_completed(self):
        # The regression this guards: without a fleet scheduler a
        # DEVICE_DISABLED completion used to be booked as *completed*.
        platform = spr_platform(device_config=shared_config())
        profile = profile_for(2, rho=1.0)
        requests = 200
        horizon = requests / sum(t.rate for t in profile.tenants)
        _generator, totals = run_with_disable(
            platform, profile, requests, fleet=None, disable_at=horizon / 2
        )
        assert totals["offered"] == totals["completed"] + totals["dropped"]
        assert totals["dropped"] > 0
        assert totals["completed"] < totals["offered"]


class TestQosPinning:
    def test_qos_tenant_keeps_its_declared_wq_under_fleet(self):
        config = DeviceConfig(
            wqs=(
                WqConfig(wq_id=0, size=64, mode=WqMode.SHARED, priority=15),
                WqConfig(wq_id=1, size=64, mode=WqMode.SHARED, priority=1),
            ),
            engines=tuple(EngineConfig(i) for i in range(ENGINES)),
            groups=(GroupConfig(0, wq_ids=(0, 1), engine_ids=tuple(range(ENGINES))),),
        )
        rate = 0.4 * dsa_capacity(SIZE, engines=ENGINES)
        profile = TrafficProfile(
            name="fleet-qos",
            tenants=make_tenants(
                "hi",
                1,
                rate / 2,
                sizes=SizeDist(kind="fixed", size=SIZE),
                wq_id=0,
                qos_priority=15,
            )
            + make_tenants(
                "lo",
                1,
                rate / 2,
                sizes=SizeDist(kind="fixed", size=SIZE),
            ),
            )
        generator, totals = drive_profile(
            profile,
            100,
            device_config=config,
            fleet=FleetSpec(2, 1, "round-robin"),
        )
        assert totals["offered"] == totals["completed"] + totals["dropped"]
        snapshot = generator.platform.metrics_snapshot()
        # The QoS-pinned tenant stayed on its declared dsa0 WQ 0; only
        # the unpinned tenant rode the scheduler.
        hi_state = next(
            s for s in generator._states if s.spec.name.startswith("hi")
        )
        assert hi_state.device is not None
        assert hi_state.device.name == "dsa0"
        lo_state = next(
            s for s in generator._states if s.spec.name.startswith("lo")
        )
        assert lo_state.device is None
        assert snapshot.get("fleet.dsa1.selected", 0.0) > 0
