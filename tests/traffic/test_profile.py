"""TenantSpec / SizeDist / TrafficProfile validation and helpers."""

import pytest

from repro.traffic import (
    SizeDist,
    Slo,
    TenantSpec,
    TrafficProfile,
    cpu_capacity,
    dsa_capacity,
    make_tenants,
)

KB = 1024


def spec(**overrides):
    base = dict(name="t000", rate=1e-4)
    base.update(overrides)
    return TenantSpec(**base)


# -- TenantSpec -------------------------------------------------------------


@pytest.mark.parametrize("bad", ["", "a.b", "a,b", "a=b"])
def test_tenant_name_rejects_metric_separators(bad):
    # Names become metric components (dsa0.wq0.source.<name>.*): the
    # registry separators must be impossible inside them.
    with pytest.raises(ValueError, match="metric-name component"):
        spec(name=bad).validate()


def test_tenant_rejects_nonpositive_rate():
    with pytest.raises(ValueError, match="rate"):
        spec(rate=0.0).validate()


def test_tenant_rejects_unknown_arrival():
    with pytest.raises(ValueError, match="arrival"):
        spec(arrival="fractal").validate()


def test_tenant_rejects_bad_backoff():
    with pytest.raises(ValueError, match="backoff"):
        spec(backoff_base_ns=500.0, backoff_cap_ns=100.0).validate()
    with pytest.raises(ValueError, match="max_retries"):
        spec(max_retries=-1).validate()


def test_arrival_override_replaces_declared_kind():
    t = spec(arrival="poisson", cv2=4.0)
    assert type(t.arrivals(0)).__name__ == "PoissonProcess"
    assert type(t.arrivals(0, "bursty")).__name__ == "BurstyProcess"
    # "default"/None keep the declared kind.
    assert type(t.arrivals(0, "default")).__name__ == "PoissonProcess"
    assert type(t.arrivals(0, None)).__name__ == "PoissonProcess"


# -- Slo --------------------------------------------------------------------


def test_slo_rejects_nonpositive_targets():
    with pytest.raises(ValueError):
        Slo(p99_ns=0.0).validate()
    with pytest.raises(ValueError):
        Slo(p999_ns=-1.0).validate()
    Slo(p99_ns=1000.0, p999_ns=5000.0).validate()  # fine


# -- SizeDist ---------------------------------------------------------------


def test_size_dist_validation():
    with pytest.raises(ValueError, match="kind"):
        SizeDist(kind="zipf").validate()
    with pytest.raises(ValueError, match="choices"):
        SizeDist(kind="choice").validate()
    with pytest.raises(ValueError, match="1:1"):
        SizeDist(kind="choice", choices=(1024, 4096), weights=(1.0,)).validate()
    with pytest.raises(ValueError, match="sigma"):
        SizeDist(kind="lognormal", size=KB, sigma=0.0).validate()


def test_size_dist_resolved_max():
    assert SizeDist(kind="fixed", size=4 * KB).resolved_max == 4 * KB
    assert SizeDist(kind="choice", choices=(KB, 64 * KB), weights=(1, 1)).resolved_max == 64 * KB
    explicit = SizeDist(kind="lognormal", size=8 * KB, sigma=0.7, max_size=32 * KB)
    assert explicit.resolved_max == 32 * KB
    # The implicit lognormal ceiling covers every draw.
    dist = SizeDist(kind="lognormal", size=8 * KB, sigma=0.7)
    sampler = spec(sizes=dist).size_sampler(0)
    bound = dist.resolved_max
    assert all(1 <= sampler.next() <= bound for _ in range(2000))


def test_fixed_sampler_consumes_no_randomness():
    # Two tenants sharing a stream index but fixed sizes draw nothing:
    # samples are the constant, with no RNG interaction.
    sampler = spec(sizes=SizeDist(kind="fixed", size=2 * KB)).size_sampler(3)
    assert [sampler.next() for _ in range(5)] == [2 * KB] * 5


# -- TrafficProfile ---------------------------------------------------------


def test_profile_rejects_duplicates_and_empty():
    with pytest.raises(ValueError, match="at least one"):
        TrafficProfile(name="p", tenants=()).validate()
    t = spec()
    with pytest.raises(ValueError, match="duplicate"):
        TrafficProfile(name="p", tenants=(t, t)).validate()


def test_make_tenants_splits_rate_evenly():
    tenants = make_tenants("t", 8, 8e-4)
    assert [t.name for t in tenants[:2]] == ["t000", "t001"]
    assert len({t.name for t in tenants}) == 8
    profile = TrafficProfile(name="p", tenants=tenants)
    assert profile.total_rate == pytest.approx(8e-4)


def test_with_arrival_forces_every_tenant():
    profile = TrafficProfile(name="p", tenants=make_tenants("t", 4, 1e-4))
    bursty = profile.with_arrival("bursty")
    assert all(t.arrival == "bursty" for t in bursty.tenants)
    assert profile.with_arrival("default") is profile


# -- capacity planning ------------------------------------------------------


def test_capacity_crossover_matches_paper_shape():
    # Large transfers: the DSA's fabric bandwidth beats the CPU's
    # software-kernel rate (the paper's offload guideline).  With a
    # single engine, small transfers are engine-bound (per-descriptor
    # dispatch + PE setup), not fabric-bound.
    assert dsa_capacity(64 * KB) > cpu_capacity(64 * KB)
    assert dsa_capacity(1 * KB, engines=1) < dsa_capacity(1 * KB, engines=4)
    # Deep in the fabric-bound regime, engines no longer help.
    assert dsa_capacity(256 * KB, engines=1) == dsa_capacity(256 * KB, engines=4)
    # CPU capacity scales linearly with cores.
    assert cpu_capacity(16 * KB, cores=4) == pytest.approx(
        2 * cpu_capacity(16 * KB, cores=2)
    )


def test_dsa_capacity_fabric_bound_scales_inversely():
    # Deep in the fabric-bound regime, halving the size doubles capacity.
    assert dsa_capacity(128 * KB) == pytest.approx(2 * dsa_capacity(256 * KB))
