#!/usr/bin/env python3
"""Quickstart: configure a DSA device, offload work, read the results.

Walks the same path a real application takes on a Sapphire Rapids box:

1. configure and enable a device through the accel-config API,
2. mmap a work-queue portal into the process,
3. build 64-byte work descriptors (a copy, a CRC, a fill),
4. submit with MOVDIR64B and wait for the completion records,
5. verify the bytes really moved and compare against software.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Opcode, WorkDescriptor, spr_platform
from repro.dsa.opcodes import DescriptorFlags
from repro.mem import AddressSpace
from repro.runtime.submit import prepare_descriptor, submit
from repro.runtime.wait import WaitMode, wait_for
from repro.sim import make_rng

KB = 1024


def main() -> None:
    # -- 1. platform + device -------------------------------------------------
    # spr_platform() builds the paper's Table 2 SPR system with one DSA
    # instance (one group, one WQ of 32 entries, one engine).
    platform = spr_platform()
    print("Devices:", platform.accel_config.list_devices())

    # -- 2. open a portal ------------------------------------------------------
    space = AddressSpace()  # this process's address space (its PASID)
    portal = platform.open_portal("dsa0", wq_id=0, space=space)
    core = platform.core(0)

    # -- 3. buffers + descriptors ---------------------------------------------
    rng = make_rng(7)
    src = space.allocate(64 * KB, backed=True)
    dst = space.allocate(64 * KB, backed=True)
    src.fill_random(rng)

    copy = WorkDescriptor(
        opcode=Opcode.MEMMOVE,
        pasid=space.pasid,
        src=src.va,
        dst=dst.va,
        size=64 * KB,
    )
    crc = WorkDescriptor(
        opcode=Opcode.CRCGEN, pasid=space.pasid, src=src.va, size=64 * KB
    )
    fill = WorkDescriptor(
        opcode=Opcode.FILL,
        pasid=space.pasid,
        flags=DescriptorFlags.REQUEST_COMPLETION | DescriptorFlags.BLOCK_ON_FAULT,
        dst=dst.va,
        size=4 * KB,
        pattern=0xDEADBEEFDEADBEEF,
    )

    # -- 4. submit + wait --------------------------------------------------------
    def offload(env):
        for descriptor in (copy, crc, fill):
            yield from prepare_descriptor(env, core, descriptor, platform.costs)
            yield from submit(env, core, portal, descriptor, platform.costs)
            waited = yield from wait_for(
                env, core, descriptor, WaitMode.UMWAIT, platform.costs
            )
            print(
                f"  {descriptor.opcode.name:8s} -> {descriptor.completion.status.name}"
                f" after {waited:.0f} ns of UMWAIT"
            )

    platform.env.process(offload(platform.env))
    platform.run()

    # -- 5. verify ------------------------------------------------------------------
    # The fill overwrote the first 4 KB of the copied data.
    assert (dst.data[:8] == np.frombuffer(b"\xef\xbe\xad\xde\xef\xbe\xad\xde", np.uint8)).all()
    assert np.array_equal(dst.data[4 * KB :], src.data[4 * KB :])
    from repro.dsa.crc import crc32c

    assert crc.completion.result == crc32c(src.data)
    print("CRC32C:", hex(crc.completion.result))

    software_ns = platform.kernels.memcpy_ns(64 * KB)
    offload_ns = copy.times.completed - copy.times.submitted
    print(
        f"64 KB copy: DSA {offload_ns:.0f} ns vs software {software_ns:.0f} ns "
        f"({software_ns / offload_ns:.2f}x)"
    )
    print("quickstart: OK")


if __name__ == "__main__":
    main()
