#!/usr/bin/env python3
"""Tiered memory: moving data between DRAM and CXL with DSA (G4).

A tiered-memory manager demotes cold pages to CXL-attached memory and
promotes hot ones back.  The example uses the DML-style API to migrate
page batches in every direction and shows the paper's Fig 6b ordering:
promotion (CXL→DRAM) outruns demotion (DRAM→CXL) because the device's
write latency exceeds its read latency, and CXL→CXL is slowest.

Run:  python examples/tiered_memory_migration.py
"""

from repro import Opcode, spr_platform
from repro.mem import AddressSpace
from repro.runtime.dml import Dml

KB = 1024
MB = 1024 * KB
PAGES_PER_BATCH = 16
PAGE = 4 * KB

DRAM_NODE = 0
CXL_NODE = 2


def migrate(platform, dml, core, src_node, dst_node, batches=32):
    """Move ``batches`` of 16 pages; returns GB/s."""
    space = dml.space
    start = platform.env.now
    moved = 0

    def worker(env):
        nonlocal moved
        for _batch in range(batches):
            members = []
            for _page in range(PAGES_PER_BATCH):
                src = space.allocate(PAGE, node=src_node)
                dst = space.allocate(PAGE, node=dst_node)
                members.append(
                    dml.make_descriptor(Opcode.MEMMOVE, PAGE, src=src, dst=dst)
                )
            batch = dml.make_batch(members)
            job = yield from dml.submit_async(core, batch)
            yield from dml.wait(core, job)
            moved += PAGES_PER_BATCH * PAGE

    platform.env.process(worker(platform.env))
    platform.env.run()
    elapsed = platform.env.now - start
    return moved / elapsed


PMEM_NODE = 3


def main() -> None:
    directions = [
        ("DRAM -> DRAM (local shuffle)", DRAM_NODE, DRAM_NODE),
        ("CXL  -> DRAM (promotion)", CXL_NODE, DRAM_NODE),
        ("DRAM -> CXL  (demotion)", DRAM_NODE, CXL_NODE),
        ("CXL  -> CXL  (compaction)", CXL_NODE, CXL_NODE),
        ("PMEM -> DRAM (promotion)", PMEM_NODE, DRAM_NODE),
        ("DRAM -> PMEM (demotion)", DRAM_NODE, PMEM_NODE),
    ]
    rates = {}
    for label, src_node, dst_node in directions:
        platform = spr_platform(with_cxl=True)
        from repro.mem.pmem import OPTANE_BANK

        platform.memsys.add_pmem_node(PMEM_NODE, socket=0, params=OPTANE_BANK)
        space = AddressSpace()
        portal = platform.open_portal("dsa0", 0, space)
        dml = Dml(
            platform.env,
            [portal],
            kernels=platform.kernels,
            costs=platform.costs,
            space=space,
        )
        core = platform.core(0)
        rates[label] = migrate(platform, dml, core, src_node, dst_node)
        print(f"{label:32s} {rates[label]:6.2f} GB/s")

    promotion = rates["CXL  -> DRAM (promotion)"]
    demotion = rates["DRAM -> CXL  (demotion)"]
    print(
        f"\nG4 holds: promotion is {promotion / demotion:.2f}x faster than "
        "demotion (CXL write latency > read latency), so prefer the faster "
        "tier as the DSA destination when either direction is possible."
    )

    # The same migration on a core, for contrast.
    platform = spr_platform(with_cxl=True)
    software = platform.kernels.throughput(Opcode.MEMMOVE, PAGE)
    print(f"Software page copy on one core: {software:.2f} GB/s per page chain")
    print("tiered_memory_migration: OK")


if __name__ == "__main__":
    main()
