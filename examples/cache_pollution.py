#!/usr/bin/env python3
"""Why offload even when the CPU could keep up: cache pollution (§4.5).

Runs the X-Mem latency probe against three backgrounds — nothing,
software memcpy processes, and the same copies offloaded to DSA — and
prints the latency curves of Fig 13 plus the LLC occupancy picture of
Fig 12.

Run:  python examples/cache_pollution.py
"""

from repro.analysis.metrics import human_size
from repro.workloads.xmem import CoRunKind, run_fig13_sweep, run_xmem_scenario

MB = 1024 * 1024


def main() -> None:
    working_sets = [1 * MB, 2 * MB, 4 * MB, 8 * MB, 16 * MB, 32 * MB, 64 * MB]
    curves = run_fig13_sweep(working_sets, duration_s=2.0)

    header = f"{'WSS':>6} " + "".join(f"{kind.value:>10}" for kind in CoRunKind)
    print(header)
    for index, wss in enumerate(working_sets):
        row = f"{human_size(wss):>6} "
        for kind in CoRunKind:
            row += f"{curves[kind][index][1]:>9.1f}n"
        print(row)

    none4 = dict(curves[CoRunKind.NONE])[4 * MB]
    soft4 = dict(curves[CoRunKind.SOFTWARE])[4 * MB]
    dsa4 = dict(curves[CoRunKind.DSA])[4 * MB]
    print(
        f"\nAt 4MB working sets: software co-runners add "
        f"{(soft4 / none4 - 1) * 100:.0f}% latency (paper: +43%); "
        f"DSA adds {(dsa4 / none4 - 1) * 100:.1f}%."
    )

    scenario = run_xmem_scenario(CoRunKind.SOFTWARE, working_set=4 * MB, duration_s=2.0)
    copy_occ = scenario.occupancy_series["copy0"][-1][1]
    probe_occ = scenario.occupancy_series["xmem0"][-1][1]
    print(
        f"LLC at the end of the software run: each memcpy core holds "
        f"{human_size(copy_occ)}, each probe only {human_size(probe_occ)} "
        "(Fig 12b's picture)."
    )
    scenario = run_xmem_scenario(CoRunKind.DSA, working_set=4 * MB, duration_s=2.0)
    probe_occ = scenario.occupancy_series["xmem0"][-1][1]
    print(
        f"With DSA offload the probes keep {human_size(probe_occ)} resident — "
        "reads don't allocate, writes stay in the DDIO ways (Fig 12c)."
    )
    print("cache_pollution: OK")


if __name__ == "__main__":
    main()
