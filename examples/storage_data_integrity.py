#!/usr/bin/env python3
"""Storage path: end-to-end data integrity with DIF and CRC32 offload.

Models what an NVMe/TCP storage target does with DSA (paper Table 1 +
Appendix C): on the write path it *inserts* T10-DIF protection per
512-byte block; on the read path it *checks and strips* the protection
and computes the CRC32C data digest for the wire — all as DSA
descriptors operating on real bytes, then cross-checked in software.

Run:  python examples/storage_data_integrity.py
"""

import numpy as np

from repro import Opcode, WorkDescriptor, spr_platform
from repro.dsa.crc import crc32c
from repro.dsa.dif import DifContext
from repro.mem import AddressSpace
from repro.sim import make_rng
from repro.workloads.spdk import DigestMode, SpdkConfig, run_spdk_target

KB = 1024


def offload(platform, device, descriptor):
    device.submit(descriptor)
    platform.env.run()
    return descriptor.completion


def main() -> None:
    platform = spr_platform()
    device = platform.driver.device("dsa0")
    space = AddressSpace()
    device.attach_space(space)
    ctx = DifContext(block_size=512, app_tag=0x10, ref_tag_seed=1000)

    # Write path: raw user data -> protected blocks (512 -> 520).
    payload = space.allocate(8 * KB, backed=True)
    payload.fill_random(make_rng(11))
    protected = space.allocate(9 * KB, backed=True)
    record = offload(
        platform,
        device,
        WorkDescriptor(
            Opcode.DIF_INSERT,
            pasid=space.pasid,
            src=payload.va,
            dst=protected.va,
            size=8 * KB,
            dif=ctx,
        ),
    )
    protected_bytes = record.bytes_completed
    print(f"DIF insert: {payload.size} B -> {protected_bytes} B protected "
          f"({record.status.name})")

    # Read path step 1: verify protection information.
    record = offload(
        platform,
        device,
        WorkDescriptor(
            Opcode.DIF_CHECK,
            pasid=space.pasid,
            src=protected.va,
            size=protected_bytes,
            dif=ctx,
        ),
    )
    print(f"DIF check: {record.result} blocks verified ({record.status.name})")

    # Read path step 2: strip protection and compute the data digest.
    stripped = space.allocate(8 * KB, backed=True)
    offload(
        platform,
        device,
        WorkDescriptor(
            Opcode.DIF_STRIP,
            pasid=space.pasid,
            src=protected.va,
            dst=stripped.va,
            size=protected_bytes,
            dif=ctx,
        ),
    )
    assert np.array_equal(stripped.data, payload.data), "round trip corrupted data"
    digest = offload(
        platform,
        device,
        WorkDescriptor(
            Opcode.CRCGEN, pasid=space.pasid, src=stripped.va, size=8 * KB
        ),
    )
    assert digest.result == crc32c(payload.data)
    print(f"Data digest (CRC32C): {digest.result:#010x} — matches software")

    # A corrupted block is caught.
    protected.data[100] ^= 0xFF
    record = offload(
        platform,
        device,
        WorkDescriptor(
            Opcode.DIF_CHECK,
            pasid=space.pasid,
            src=protected.va,
            size=protected_bytes,
            dif=ctx,
        ),
    )
    print(f"DIF check after corruption: {record.status.name} (expected DIF_ERROR)")

    # Appendix C in miniature: target IOPS with the digest offloaded.
    print("\nNVMe/TCP target, 16 KB reads, 4 target cores:")
    for mode in DigestMode:
        result = run_spdk_target(
            SpdkConfig(digest=mode, target_cores=4, queue_depth=128, ios=800)
        )
        print(
            f"  {mode.value:5s}: {result.iops / 1e3:7.0f} kIOPS, "
            f"mean latency {result.latency.mean / 1e3:.0f} us"
        )
    print("storage_data_integrity: OK")


if __name__ == "__main__":
    main()
