#!/usr/bin/env python3
"""Transparent offload (DTO) under a CacheLib-style caching service.

No application changes: DTO intercepts ``memcpy`` and redirects calls
of 8 KB and above to DSA (Appendix B).  The example runs CacheBench
with and without the interposer and reports the operation-rate and
tail-latency changes, plus DTO's own interception statistics.

Run:  python examples/transparent_cache_offload.py
"""

from repro.workloads.cachelib import CacheBenchConfig, run_cachebench


def main() -> None:
    print(f"{'#h':>3} {'#s':>3}  {'base Mops':>9}  {'DTO Mops':>9}  {'gain':>5}  "
          f"{'tail base':>9}  {'tail DTO':>9}")
    for cores, threads in ((2, 4), (4, 8), (8, 16)):
        base = run_cachebench(
            CacheBenchConfig(
                n_cores=cores, n_threads=threads, use_dsa=False, ops_per_thread=300
            )
        )
        dsa = run_cachebench(
            CacheBenchConfig(
                n_cores=cores, n_threads=threads, use_dsa=True, ops_per_thread=300
            )
        )
        print(
            f"{cores:>3} {threads:>3}  {base.ops_per_second / 1e6:>9.2f}  "
            f"{dsa.ops_per_second / 1e6:>9.2f}  "
            f"{dsa.ops_per_second / base.ops_per_second:>4.2f}x  "
            f"{base.tail_latency(99.9) / 1e3:>7.1f}us  "
            f"{dsa.tail_latency(99.9) / 1e3:>7.1f}us"
        )
        total = dsa.offloaded + dsa.software
        print(
            f"      DTO: {dsa.offloaded}/{total} calls offloaded "
            f"({dsa.offloaded / total * 100:.1f}% of calls, the >=8KB ones)"
        )
    print("transparent_cache_offload: OK")


if __name__ == "__main__":
    main()
