#!/usr/bin/env python3
"""Case study: accelerating DPDK Vhost packet copies with DSA (§6.4).

Reproduces the Fig 16b sweep in miniature: forwards TestPMD-style
bursts at several packet sizes with the CPU copy path and with the
paper's optimized DSA integration (three-stage async pipeline, one
batch descriptor per 32-packet burst, cache-control hint set, and the
per-virtqueue recording array for in-order delivery).

Run:  python examples/virtio_packet_forwarding.py
"""

from repro.workloads.vhost import VhostConfig, run_vhost


def main() -> None:
    print(f"{'pkt size':>8}  {'CPU Mpps':>9}  {'copy cycles':>11}  {'DSA Mpps':>9}  {'speedup':>7}")
    for packet_size in (64, 128, 256, 512, 1024, 1518):
        cpu = run_vhost(VhostConfig(packet_size=packet_size, bursts=80, use_dsa=False))
        dsa = run_vhost(VhostConfig(packet_size=packet_size, bursts=80, use_dsa=True))
        print(
            f"{packet_size:>8}  {cpu.forwarding_rate_mpps:>9.2f}  "
            f"{cpu.copy_cycle_fraction * 100:>10.0f}%  "
            f"{dsa.forwarding_rate_mpps:>9.2f}  "
            f"{dsa.forwarding_rate_mpps / cpu.forwarding_rate_mpps:>6.2f}x"
        )

    # Multiple virtqueues sharing DWQs: packets still arrive in order
    # thanks to the recording array.
    multi = run_vhost(VhostConfig(packet_size=512, bursts=40, n_queues=4, use_dsa=True))
    print(
        f"\n4 virtqueues: {multi.packets_forwarded} packets forwarded, "
        f"{multi.reordered_packets} completed out of order (reordered in software), "
        f"aggregate {multi.forwarding_rate_mpps:.2f} Mpps"
    )
    print("virtio_packet_forwarding: OK")


if __name__ == "__main__":
    main()
