#!/usr/bin/env python3
"""HPC/ML communication: offloading libfabric SAR copies (Appendix A).

Walks the three Appendix A workloads: the libfabric pingpong/RMA
microbenchmarks, OSU-style ring AllReduce, and a BERT pretraining step
whose gradient AllReduce rides the same path.

Run:  python examples/hpc_allreduce.py
"""

from repro.analysis.metrics import human_size
from repro.workloads.libfabric import (
    allreduce,
    bert_step,
    measure_transfer,
    pingpong_speedup,
    rma_speedup,
)

KB = 1024
MB = 1024 * KB


def main() -> None:
    print("libfabric SAR microbenchmarks (DSA over CPU):")
    print(f"{'msg size':>9}  {'PP speedup':>10}  {'RMA speedup':>11}")
    for size in (4 * KB, 32 * KB, 256 * KB, 1 * MB, 4 * MB):
        print(
            f"{human_size(size):>9}  {pingpong_speedup(size):>9.2f}x  "
            f"{rma_speedup(size):>10.2f}x"
        )

    cpu = measure_transfer(4 * MB, use_dsa=False)
    dsa = measure_transfer(4 * MB, use_dsa=True)
    print(
        f"\n4MB message: CPU SAR {cpu.bandwidth:.1f} GB/s (two serialized "
        f"bounce hops) vs DSA {dsa.bandwidth:.1f} GB/s (one SVM copy)"
    )

    print("\nOSU AllReduce, 16 MB messages:")
    for ranks in (2, 4, 8):
        result = allreduce(16 * MB, ranks)
        print(
            f"  {ranks} ranks: CPU {result.cpu_ns / 1e6:7.2f} ms  "
            f"DSA {result.dsa_ns / 1e6:6.2f} ms  ({result.speedup:.2f}x)"
        )

    print("\nBERT pretraining step (gradient AllReduce offloaded):")
    for ranks in (2, 8):
        step = bert_step(ranks)
        print(
            f"  {ranks} ranks: AllReduce {step.allreduce_speedup:.2f}x faster, "
            f"end-to-end step +{(step.end_to_end_speedup - 1) * 100:.1f}%"
        )
    print("hpc_allreduce: OK")


if __name__ == "__main__":
    main()
